"""Range queries over a compacted edge-shard store, without loading it whole.

A compacted store (:func:`repro.store.compact_shards`) is the out-of-core
stand-in for a materialized product adjacency: its shards are globally sorted
by source vertex and the manifest v2 records each shard's
``[src_min, src_max]`` range.  :class:`ShardStore` answers the local queries
:class:`repro.core.KroneckerGraph` answers from factor rows —
``degree(v)``, ``neighbors(v)``, ``edges_in_range(lo, hi)``, ``egonet(v)``,
``subgraph(vertices)`` — by binary-searching the manifest ranges and decoding
only the one or two shards that overlap the query, so serving a vertex query
over a billion-edge spill touches kilobytes, not the whole directory.

Stores whose manifest names extra ``payload_columns`` (``"triangles"``,
``"trussness"``, …) serve the per-edge ground truth alongside the topology:
``edges_for_sources`` / ``edges_in_range`` grow ``with_payload=True``
variants returning the full ``(m, 2 + k)`` rows, ``egonet`` / ``subgraph``
can return the induced payload rows, and :meth:`ShardStore.edge_payloads`
answers point lookups.  The LRU caches the decoded payload block alongside
the topology — one decode serves both kinds of query.

Decoded shards are kept in a small LRU cache: repeated queries against the
same region of the graph (the "heavy traffic" serving pattern) hit memory,
not disk.  Following the PR 1 vectorization conventions, the hot entry points
are batch-first (``out_degrees`` / ``degrees`` / ``edges_for_sources`` take
index arrays) and the scalar forms are thin wrappers; there is no per-edge
Python loop anywhere in the query path.

**Decodes are zero-copy by default**: shards are opened with
``np.load(mmap_mode="r")`` — the same convention compaction uses for its
merge runs — so the LRU caches read-only *views* of the on-disk files, not
private copies, and a warm bulk query (``edges_in_range`` feeding the
:mod:`repro.serve` binary data plane) slices the page cache instead of
burning CPU on array copies.  ``mmap=False`` opts back into eager copies
(e.g. when the store lives on a filesystem whose mappings are slow).  The
mapping lifecycle is tied to the cache: evicting an entry (LRU overflow,
:meth:`clear_cache`, :meth:`close`) drops the store's reference and the
underlying ``mmap`` — and its file descriptor — is released as soon as the
last outstanding query view dies (CPython refcounting makes this prompt;
the fd-churn test in ``tests/test_shard_store.py`` holds it to account).
:meth:`stats` reports the split: ``resident_bytes`` counts private copies
held by the cache, ``mapped_bytes`` counts bytes addressable through cached
mappings.

The cache and its ``shard_reads`` / ``cache_hits`` counters are
**concurrent-safe**: a lock guards every cache mutation, so one store can be
shared by many reader threads — the serving pattern of
:mod:`repro.serve`, whose asyncio front-end fans decodes out to a thread
pool.  Shard *decodes* run outside the lock (two threads missing on the same
shard may both read the file; the loser's rows are dropped and counted as a
read), so concurrent misses on different shards overlap their I/O.

Telemetry lives on a :class:`repro.obs.MetricsRegistry` (PR 8): the
counters are ``store.shard_reads`` / ``store.cache_hits`` series and the
cache occupancy is exposed as callback gauges, so :meth:`ShardStore.stats`
is a *view* over the registry a server shares with this store rather than a
private dict; :meth:`ShardStore.reset_stats` rearms the counters between
measurement windows.  A cache-miss decode opens a ``store.decode`` trace
span when a request trace is active (:mod:`repro.obs.trace`), which is how
a routed query's span tree reaches all the way down to the shard file.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.graphs.egonet import Egonet
from repro.graphs.egonet import egonet as _extract_egonet
from repro.graphs.io import read_shard_manifest
from repro.lint.runtime import new_lock
from repro.obs import EventLog, MetricsRegistry, trace

__all__ = ["ShardStore", "StoreQueryMixin"]

PathLike = Union[str, Path]

#: Largest vertex count for which ``src * n + dst`` fits an ``int64`` key.
_MAX_ENCODABLE_VERTICES = np.int64(3_037_000_499)  # floor(sqrt(2**63 - 1))


def _load_shard_file(path: Path, mmap_mode: Optional[str] = None) -> np.ndarray:
    """Decode one shard file.  Module-level so tests can hook it to count
    exactly which files a query touches.  ``mmap_mode="r"`` maps the file
    read-only instead of copying it (the store's default)."""
    return np.load(path, mmap_mode=mmap_mode)


def _ragged_take(arr: np.ndarray, lefts: np.ndarray, rights: np.ndarray) -> np.ndarray:
    """Concatenate ``arr[lefts[i]:rights[i]]`` slices without a Python loop."""
    lengths = rights - lefts
    total = int(lengths.sum())
    if total == 0:
        return arr[:0]
    starts = np.repeat(lefts, lengths)
    offsets = np.arange(total, dtype=np.int64)
    offsets -= np.repeat(np.cumsum(lengths) - lengths, lengths)
    return arr[starts + offsets]


class StoreQueryMixin:
    """Derived graph queries over any store exposing the batch primitives.

    The mixin is the single definition of every query that can be *composed*
    from the batched primitives — ``degree`` / ``neighbors`` / ``has_edge`` /
    ``subgraph_adjacency`` / ``subgraph_edges`` / ``subgraph`` / ``egonet`` /
    ``edge_payload`` — so a local :class:`ShardStore` and the range-routed
    fleet façade (:class:`repro.serve.router.FleetStore`) answer them through
    literally the same code path, and routed answers are byte-equal to
    single-store answers by construction rather than by parallel maintenance.

    A concrete store provides the primitives and descriptors:

    - ``degrees(vs)``, ``edges_for_sources(vs, with_payload=)``,
      ``edges_in_range(lo, hi, with_payload=)``, ``edge_payloads(ps, qs)``
    - attributes ``n_vertices``, ``payload_columns``, ``manifest``, ``_width``
    """

    def _store_label(self) -> str:
        """Human-facing identity used in error messages: the directory for an
        on-disk store, the manifest name for a façade without one."""
        directory = getattr(self, "directory", None)
        if directory is not None:
            return str(directory)
        return str(self.manifest.get("name") or "store")

    def _check_vertices(self, vs: np.ndarray) -> np.ndarray:
        vs = np.ascontiguousarray(vs, dtype=np.int64)
        if vs.size and (vs.min() < 0 or vs.max() >= self.n_vertices):
            raise IndexError("product vertex id out of range")
        return vs

    def _require_payload(self) -> None:
        if not self.payload_columns:
            raise ValueError(
                f"{self._store_label()}: store carries no payload columns "
                "(manifest payload_columns is ['src', 'dst']); re-stream the "
                "spill with payload columns and recompact to serve per-edge "
                "ground truth")

    def _finish_rows(self, parts, with_payload: bool) -> np.ndarray:
        """Assemble gathered full-width rows and slice off the payload unless
        the caller asked for it."""
        if with_payload:
            self._require_payload()
        width = self._width if with_payload else 2
        if not parts:
            return np.zeros((0, width), dtype=np.int64)
        rows = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return rows if with_payload else rows[:, :2]

    def payload_index(self, column: str) -> int:
        """Position of *column* within the payload slice of a full row
        (i.e. ``row[2 + payload_index(column)]`` is its value)."""
        try:
            return self.payload_columns.index(column)
        except ValueError:
            raise ValueError(
                f"{self._store_label()}: no payload column {column!r}; this "
                f"store carries {list(self.payload_columns)}") from None

    def edge_payload(self, p: int, q: int) -> dict:
        """Payload of one stored edge as a ``{column: value}`` dict."""
        values = self.edge_payloads(np.asarray([p]), np.asarray([q]))[0]
        return {name: int(value)
                for name, value in zip(self.payload_columns, values)}

    # ------------------------------------------------------------------
    # Scalar views (thin wrappers over the batched kernels)
    # ------------------------------------------------------------------
    def degree(self, v: int) -> int:
        """Degree of one vertex, self loop excluded (the
        :meth:`repro.core.KroneckerGraph.degree` convention)."""
        return int(self.degrees(np.asarray([v]))[0])

    def has_edge(self, p: int, q: int) -> bool:
        """Whether the store holds the directed entry ``(p, q)``."""
        row = self.edges_for_sources(np.asarray([p]))
        index = int(np.searchsorted(row[:, 1], int(q)))
        return index < row.shape[0] and int(row[index, 1]) == int(q)

    def neighbors(self, v: int, *, include_self_loop: bool = False) -> np.ndarray:
        """Sorted neighbour ids of *v*, matching
        :meth:`repro.core.KroneckerGraph.neighbors`."""
        qs = self.edges_for_sources(np.asarray([v]))[:, 1]
        if not include_self_loop:
            qs = qs[qs != int(v)]
        return np.ascontiguousarray(qs)

    # ------------------------------------------------------------------
    # Induced subgraphs / egonets
    # ------------------------------------------------------------------
    def subgraph_adjacency(self, vertices: Sequence[int]) -> sp.csr_matrix:
        """Induced adjacency on *vertices*, gathered through the batched
        edge primitives only.

        Local vertex *i* of the result is ``vertices[i]`` (order preserved,
        like :meth:`repro.core.KroneckerGraph.subgraph_adjacency`); *vertices*
        must be unique.
        """
        ps = self._check_vertices(np.asarray(vertices, dtype=np.int64))
        k = ps.shape[0]
        if k == 0:
            return sp.csr_matrix((0, 0), dtype=np.int64)
        order = np.argsort(ps, kind="stable")
        sorted_ps = ps[order]
        if np.any(sorted_ps[1:] == sorted_ps[:-1]):
            raise ValueError("subgraph vertex selection contains duplicates")
        edges = self.edges_for_sources(sorted_ps)
        if edges.shape[0] == 0:
            return sp.csr_matrix((k, k), dtype=np.int64)
        # Keep only edges landing inside the selection, then relabel both
        # endpoints to local ids in the caller's ordering.
        pos = np.minimum(np.searchsorted(sorted_ps, edges[:, 1]), k - 1)
        keep = sorted_ps[pos] == edges[:, 1]
        edges, pos = edges[keep], pos[keep]
        local_src = order[np.searchsorted(sorted_ps, edges[:, 0])]
        local_dst = order[pos]
        data = np.ones(edges.shape[0], dtype=np.int64)
        return sp.csr_matrix((data, (local_src, local_dst)), shape=(k, k))

    def subgraph_edges(self, vertices: Sequence[int], *,
                       with_payload: bool = False) -> np.ndarray:
        """Stored rows with both endpoints in *vertices* (global ids,
        ``(src, dst)``-sorted); the edge-list sibling of
        :meth:`subgraph_adjacency`, and the carrier of the induced payload
        rows when ``with_payload=True``."""
        sel = np.unique(self._check_vertices(np.asarray(vertices, dtype=np.int64)))
        rows = self.edges_for_sources(sel, with_payload=with_payload)
        if sel.size == 0 or rows.shape[0] == 0:
            return rows
        pos = np.minimum(np.searchsorted(sel, rows[:, 1]), sel.size - 1)
        return rows[sel[pos] == rows[:, 1]]

    def subgraph(self, vertices: Sequence[int], *, with_payload: bool = False):
        """Induced subgraph as a :class:`repro.graphs.Graph` (undirected
        stores; the adjacency of an undirected product spill is symmetric by
        construction).

        With ``with_payload=True`` returns ``(graph, rows)`` where *rows* are
        the induced ``(m, 2 + k)`` stored rows (global vertex ids) carrying
        the manifest's payload columns.
        """
        graph = Graph(self.subgraph_adjacency(vertices),
                      name=f"{self.manifest.get('name') or 'store'}[sub]",
                      validate=False)
        if not with_payload:
            return graph
        return graph, self.subgraph_edges(vertices, with_payload=True)

    def egonet(self, v: int, *, with_payload: bool = False):
        """Egonet of *v* served entirely from the store.

        Delegates to :func:`repro.graphs.egonet.egonet` through the same
        ``neighbors``/``subgraph`` protocol :class:`~repro.core.KroneckerGraph`
        implements, so the Figure 7 spot checks run unchanged against spilled
        edges — the product is never materialized, and only the shards
        covering the centre and its neighbours are decoded.

        With ``with_payload=True`` returns ``(egonet, rows)`` where *rows*
        are the stored ``(m, 2 + k)`` rows induced on the egonet's vertices —
        the per-edge ground truth of the neighbourhood, served from the same
        decoded shards.
        """
        ego = _extract_egonet(self, int(v))
        if not with_payload:
            return ego
        return ego, self.subgraph_edges(ego.vertices, with_payload=True)


class ShardStore(StoreQueryMixin):
    """Read-side query layer over a compacted (manifest v2) shard directory.

    Parameters
    ----------
    directory:
        A shard directory written by :func:`repro.store.compact_shards`.
        Uncompacted (v1, per-block) spills are rejected with a pointer to the
        compactor — their shards carry no vertex ranges to search.
    cache_shards:
        Number of decoded shards kept in the LRU cache (≥ 1).  The cache is
        the store's only O(edges) memory; everything else is manifest-sized.
    mmap:
        ``True`` (default) decodes shards with ``np.load(mmap_mode="r")`` so
        the cache holds read-only views of the files — zero copies on the
        bulk read path, one open mapping (and file descriptor) per cached
        shard, released on eviction.  ``False`` opts back into eager array
        copies (no open files kept; each decode pays a full read).
    registry:
        The :class:`repro.obs.MetricsRegistry` to register this store's
        series on (``store.shard_reads``, ``store.cache_hits`` and the
        occupancy gauges).  A server passes its own registry here so server
        and store stats are views over one registry; ``None`` creates a
        private one.  One store per registry — the occupancy gauges are
        callback-backed.
    events:
        The :class:`repro.obs.EventLog` flight recorder LRU evictions are
        announced on (``store.shard_evicted`` events).  Shared with the
        serving layer exactly like *registry*; ``None`` creates a private
        one.

    Attributes
    ----------
    shard_reads:
        Shard files decoded from disk so far (cache misses).
    cache_hits:
        Queries served from the decoded-shard cache.
    """

    def __init__(self, directory: PathLike, *, cache_shards: int = 4,
                 mmap: bool = True, registry: Optional[MetricsRegistry] = None,
                 events: Optional[EventLog] = None):
        self.directory = Path(directory)
        manifest = read_shard_manifest(self.directory)
        if manifest["format_version"] < 2 or manifest.get("sorted_by") != "source":
            raise ValueError(
                f"{self.directory} is an uncompacted per-block spill "
                "(no vertex ranges to search); run "
                "repro.store.compact_shards on it first")
        if cache_shards < 1:
            raise ValueError(f"cache_shards must be >= 1, got {cache_shards}")
        self.manifest = manifest
        self.n_vertices = int(manifest["n_vertices"])
        self.total_edges = int(manifest["total_edges"])
        #: Extra per-edge payload columns the shards carry beyond (src, dst);
        #: empty for a topology-only store.
        self.payload_columns = tuple(manifest["payload_columns"][2:])
        self._width = 2 + len(self.payload_columns)
        self._files = [shard["file"] for shard in manifest["shards"]]
        self._src_min = np.asarray(
            [shard["src_min"] for shard in manifest["shards"]], dtype=np.int64)
        self._src_max = np.asarray(
            [shard["src_max"] for shard in manifest["shards"]], dtype=np.int64)
        # Range ordering/sanity is validated by read_shard_manifest (the one
        # reader every consumer shares), so a corrupt manifest fails there
        # with a field-naming ValueError before this object exists.
        self.cache_shards = int(cache_shards)
        self.mmap = bool(mmap)
        # index -> [rows, encoded (src·n + dst) keys or None (built lazily)]
        self._cache: "OrderedDict[int, list]" = OrderedDict()
        # Guards the LRU OrderedDict: queries may come from many threads at
        # once (repro.serve offloads decodes to a pool).  The traffic
        # counters live on the registry (leaf-locked instruments), so they
        # can be read mid-serve without touching this lock.
        self._lock = new_lock("store.lru")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else EventLog()
        self._shard_reads = self.registry.counter("store.shard_reads")
        self._cache_hits = self.registry.counter("store.cache_hits")
        self.registry.gauge("store.cached_shards",
                            fn=lambda: self._cache_usage()[2])
        self.registry.gauge("store.resident_bytes",
                            fn=lambda: self._cache_usage()[0])
        self.registry.gauge("store.mapped_bytes",
                            fn=lambda: self._cache_usage()[1])

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        """Number of shards in the store."""
        return len(self._files)

    def _entry(self, index: int) -> list:
        with self._lock:
            cached = self._cache.get(index)
            if cached is not None:
                self._cache_hits.inc()
                self._cache.move_to_end(index)
                return cached
        # Decode outside the lock so concurrent misses on *different* shards
        # overlap their file I/O; a racing miss on the same shard costs one
        # redundant decode (counted below) but never corrupts the cache.
        path = self.directory / self._files[index]
        with trace.span("store.decode", shard=self._files[index]):
            rows = _load_shard_file(path, mmap_mode="r" if self.mmap else None)
        if rows.ndim != 2 or rows.shape[1] != self._width:
            raise ValueError(
                f"{path}: shard has shape {rows.shape} but the manifest "
                f"payload_columns {self.manifest['payload_columns']!r} "
                f"require {self._width} columns")
        evicted_index = None
        with self._lock:
            self._shard_reads.inc()
            cached = self._cache.get(index)
            if cached is not None:
                self._cache.move_to_end(index)
                return cached
            entry = [rows, None]
            self._cache[index] = entry
            if len(self._cache) > self.cache_shards:
                evicted_index, _ = self._cache.popitem(last=False)
        if evicted_index is not None:
            # Emitted after the lock is released: the event log is a leaf in
            # the lock-order digraph and must stay one — no store.lru →
            # obs.events edge.
            self.events.emit("store.shard_evicted",
                             shard=self._files[evicted_index],
                             cache_shards=self.cache_shards)
        return entry

    def _shard(self, index: int) -> np.ndarray:
        """Decoded ``(m, 2 + k)`` row array of one shard, through the LRU
        cache — payload columns are cached alongside the topology, so one
        decode serves both kinds of query."""
        return self._entry(index)[0]

    def _shard_keys(self, index: int) -> np.ndarray:
        """Sorted encoded ``src · n + dst`` keys of one shard, cached with the
        decoded edges so repeated degree queries stay shard-size-independent."""
        entry = self._entry(index)
        keys = entry[1]
        if keys is None:
            edges = entry[0]
            keys = edges[:, 0] * np.int64(self.n_vertices) + edges[:, 1]
            # Plain slot assignment: racing threads compute identical arrays,
            # so last-writer-wins is safe and needs no lock round-trip.
            entry[1] = keys
        return keys

    def clear_cache(self) -> None:
        """Drop every decoded shard (counters are kept).

        With ``mmap=True`` this releases the store's reference to each
        cached mapping; the ``mmap`` object — and its file descriptor — is
        closed as soon as no query-returned view of that shard is alive
        (forcing the close under an outstanding view would invalidate the
        caller's array mid-read, so lifecycle follows the last reference).
        """
        with self._lock:
            self._cache.clear()

    def close(self) -> None:
        """Release every cached decode (and, with ``mmap=True``, the open
        mappings).  The store stays usable — the next query just decodes
        again — so this is a cache-lifecycle call, not a destructor."""
        self.clear_cache()

    def _cache_usage(self) -> Tuple[int, int, int]:
        """``(resident_bytes, mapped_bytes, cached_shards)`` in one locked
        walk — the backing for both :meth:`stats` and the registry's
        callback gauges."""
        with self._lock:
            resident = 0
            mapped = 0
            for rows, keys in self._cache.values():
                if isinstance(rows, np.memmap):
                    mapped += rows.nbytes
                else:
                    resident += rows.nbytes
                if keys is not None:
                    resident += keys.nbytes
            return resident, mapped, len(self._cache)

    @property
    def shard_reads(self) -> int:
        """Shard files decoded from disk (the ``store.shard_reads`` series)."""
        return self._shard_reads.value

    @property
    def cache_hits(self) -> int:
        """Queries served from the decoded-shard LRU (``store.cache_hits``)."""
        return self._cache_hits.value

    def stats(self) -> dict:
        """Snapshot of the cache counters and occupancy — a view over the
        store's series on :attr:`registry`.

        The serving layer (:mod:`repro.serve`) exposes this verbatim through
        its ``stats`` request, so the keys are part of the wire surface:
        ``shard_reads`` (files decoded from disk), ``cache_hits`` (queries
        served from the decoded-shard LRU), ``cached_shards`` (current
        occupancy), ``cache_shards`` (capacity), ``n_shards``, ``mmap``
        (whether decodes are zero-copy mappings), and the bytes-resident
        split: ``resident_bytes`` counts private array copies the cache
        holds (decoded rows when ``mmap=False``, plus lazily built
        encoded-key arrays), ``mapped_bytes`` counts bytes addressable
        through cached read-only mappings (page-cache backed, not private
        memory).  A warm ``mmap=True`` store answering bulk range queries
        shows both numbers flat across queries — the no-per-query-copy
        acceptance bar.
        """
        resident, mapped, cached = self._cache_usage()
        return {
            "shard_reads": self._shard_reads.value,
            "cache_hits": self._cache_hits.value,
            "cached_shards": cached,
            "cache_shards": self.cache_shards,
            "n_shards": self.n_shards,
            "mmap": self.mmap,
            "resident_bytes": resident,
            "mapped_bytes": mapped,
        }

    def reset_stats(self) -> None:
        """Zero ``shard_reads`` / ``cache_hits`` (decoded shards stay cached),
        so a measurement window can start from a warm cache."""
        self._shard_reads.reset()
        self._cache_hits.reset()

    def _overlapping(self, lo: int, hi_inclusive: int) -> Tuple[int, int]:
        """Half-open shard-index range whose vertex ranges intersect
        ``[lo, hi_inclusive]`` — the manifest binary search at the heart of
        every query."""
        first = int(np.searchsorted(self._src_max, lo, side="left"))
        last = int(np.searchsorted(self._src_min, hi_inclusive, side="right"))
        return first, max(first, last)

    # ------------------------------------------------------------------
    # Batched queries (the hot path)
    # ------------------------------------------------------------------
    def _batched_counts(self, vs: np.ndarray, *, with_self_loops: bool
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-vertex stored-entry counts and (optionally) self-loop flags.

        One pass over the overlapping shard window serves both quantities —
        each shard is decoded exactly once, so a whole-store ``degrees`` call
        reads every shard once even when the window exceeds the LRU.  The
        self-loop probe searches encoded ``src · n + dst`` keys (sorted,
        because shards are lexsorted); the key fits ``int64`` for any vertex
        count this single-node store can address.
        """
        counts = np.zeros(vs.shape[0], dtype=np.int64)
        flags = np.zeros(vs.shape[0], dtype=bool)
        if vs.size == 0 or self.n_shards == 0:
            return counts, flags
        if with_self_loops and self.n_vertices > int(_MAX_ENCODABLE_VERTICES):
            raise NotImplementedError(
                "self-loop probing needs src*n+dst to fit int64; "
                f"n_vertices={self.n_vertices} is beyond that")
        n = np.int64(self.n_vertices)
        first, last = self._overlapping(int(vs.min()), int(vs.max()))
        for index in range(first, last):
            mask = (vs >= self._src_min[index]) & (vs <= self._src_max[index])
            if not mask.any():
                continue
            shard = self._shard(index)
            srcs = shard[:, 0]
            counts[mask] += (np.searchsorted(srcs, vs[mask], side="right")
                             - np.searchsorted(srcs, vs[mask], side="left"))
            if with_self_loops:
                keys = self._shard_keys(index)
                wanted = vs[mask] * (n + 1)
                pos = np.searchsorted(keys, wanted)
                found = pos < keys.shape[0]
                found[found] &= keys[pos[found]] == wanted[found]
                flags[mask] |= found
        return counts, flags

    def out_degrees(self, vs: Sequence[int]) -> np.ndarray:
        """Stored out-entry count per source vertex (array-in / array-out).

        For an undirected product this is the raw row count including a self
        loop; :meth:`degrees` applies the self-loop correction to match
        :meth:`repro.core.KroneckerGraph.degree`.
        """
        return self._batched_counts(self._check_vertices(vs),
                                    with_self_loops=False)[0]

    def degrees(self, vs: Sequence[int]) -> np.ndarray:
        """Degree per vertex with the self loop excluded, matching
        :meth:`repro.core.KroneckerGraph.degree` (array-in / array-out)."""
        counts, loops = self._batched_counts(self._check_vertices(vs),
                                             with_self_loops=True)
        return counts - loops.astype(np.int64)

    def edges_for_sources(self, vs: Sequence[int], *,
                          with_payload: bool = False) -> np.ndarray:
        """All stored edges whose source is in *vs*, in ``(src, dst)`` order.

        The ragged batched gather underneath :meth:`neighbors` and
        :meth:`subgraph_adjacency`: one pair of ``searchsorted`` calls per
        overlapping shard, one vectorized slice-concatenation, no per-edge
        loop.  Duplicate sources in *vs* are deduplicated.  With
        ``with_payload=True`` the full ``(m, 2 + k)`` rows — topology plus
        the manifest's named ground-truth columns — are returned.
        """
        vs = np.unique(self._check_vertices(vs))
        if vs.size == 0 or self.n_shards == 0:
            return self._finish_rows([], with_payload)
        first, last = self._overlapping(int(vs.min()), int(vs.max()))
        parts = []
        for index in range(first, last):
            mask = (vs >= self._src_min[index]) & (vs <= self._src_max[index])
            if not mask.any():
                continue
            shard = self._shard(index)
            srcs = shard[:, 0]
            lefts = np.searchsorted(srcs, vs[mask], side="left")
            rights = np.searchsorted(srcs, vs[mask], side="right")
            part = _ragged_take(shard, lefts, rights)
            if part.shape[0]:
                parts.append(part)
        return self._finish_rows(parts, with_payload)

    def edges_in_range(self, lo: int, hi: int, *,
                       with_payload: bool = False) -> np.ndarray:
        """All stored edges with source vertex in ``[lo, hi)``, sorted by
        ``(src, dst)``; only the shards whose manifest range overlaps the
        query are decoded.  ``with_payload=True`` returns the full
        ``(m, 2 + k)`` rows."""
        lo, hi = int(lo), int(hi)
        if lo >= hi or self.n_shards == 0:
            return self._finish_rows([], with_payload)
        first, last = self._overlapping(lo, hi - 1)
        parts = []
        for index in range(first, last):
            shard = self._shard(index)
            srcs = shard[:, 0]
            left = np.searchsorted(srcs, lo, side="left")
            right = np.searchsorted(srcs, hi - 1, side="right")
            if right > left:
                parts.append(shard[left:right])
        return self._finish_rows(parts, with_payload)

    # ------------------------------------------------------------------
    # Payload lookups
    # ------------------------------------------------------------------
    def edge_payloads(self, ps: Sequence[int], qs: Sequence[int]) -> np.ndarray:
        """Payload values of the stored edges ``(ps[t], qs[t])``.

        Array-in / array-out: returns an ``(m, k)`` ``int64`` array whose
        columns follow :attr:`payload_columns`.  Every queried pair must be a
        stored edge — a missing pair raises a :class:`ValueError` naming it
        (payloads of non-edges are not defined).  Lookups binary-search the
        cached encoded ``src · n + dst`` keys of the overlapping shards, so
        repeated probes against a warm region never re-scan a shard.
        """
        self._require_payload()
        ps = self._check_vertices(np.atleast_1d(np.asarray(ps, dtype=np.int64)))
        qs = self._check_vertices(np.atleast_1d(np.asarray(qs, dtype=np.int64)))
        if ps.shape != qs.shape:
            raise ValueError(f"ps and qs must have matching shapes, "
                             f"got {ps.shape} and {qs.shape}")
        out = np.zeros((ps.shape[0], len(self.payload_columns)), dtype=np.int64)
        found = np.zeros(ps.shape[0], dtype=bool)
        if ps.size == 0:
            return out
        if self.n_vertices > int(_MAX_ENCODABLE_VERTICES):
            raise NotImplementedError(
                "payload lookup needs src*n+dst to fit int64; "
                f"n_vertices={self.n_vertices} is beyond that")
        n = np.int64(self.n_vertices)
        wanted = ps * n + qs
        if self.n_shards:
            first, last = self._overlapping(int(ps.min()), int(ps.max()))
            for index in range(first, last):
                todo = np.flatnonzero(~found
                                      & (ps >= self._src_min[index])
                                      & (ps <= self._src_max[index]))
                if todo.size == 0:
                    continue
                keys = self._shard_keys(index)
                pos = np.searchsorted(keys, wanted[todo])
                in_range = pos < keys.shape[0]
                safe = np.where(in_range, pos, 0)
                hit = in_range & (keys[safe] == wanted[todo])
                if hit.any():
                    rows = self._shard(index)
                    out[todo[hit]] = rows[pos[hit], 2:]
                    found[todo[hit]] = True
        if not found.all():
            missing = int(np.flatnonzero(~found)[0])
            raise ValueError(
                f"edge ({int(ps[missing])}, {int(qs[missing])}) is not stored "
                "in this shard store; payloads exist only for stored edges")
        return out

    # ------------------------------------------------------------------
    # Scalar views (thin wrappers over the batched kernels)
    # ------------------------------------------------------------------
    def out_degree(self, v: int) -> int:
        """Stored out-entry count of one vertex."""
        return int(self.out_degrees(np.asarray([v]))[0])

    def __repr__(self) -> str:
        return (f"ShardStore({str(self.directory)!r}, n_vertices={self.n_vertices}, "
                f"total_edges={self.total_edges}, n_shards={self.n_shards}, "
                f"payload_columns={list(self.payload_columns)}, "
                f"cache_shards={self.cache_shards})")
