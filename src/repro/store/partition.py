"""Cut a compacted manifest into per-worker vertex-range slice manifests.

A serving fleet (:mod:`repro.serve.router`) wants N workers, each owning a
contiguous slice ``[src_lo, src_hi)`` of the vertex space.  Because a
compacted store is globally sorted by source and its manifest v2 records each
shard's ``[src_min, src_max]`` range, a slice is just a *manifest* artifact:
:func:`partition_manifest` writes one sub-directory per worker whose
``manifest.json`` lists the subset of existing ``.npy`` shard files that
overlap the slice's assigned range — by relative path, so **no shard bytes
are rewritten or copied**, and every slice opens through the ordinary
:class:`repro.store.ShardStore` / :func:`repro.graphs.io.read_shard_manifest`
path with full validation.

Two consequences worth naming:

- A shard whose range straddles a slice boundary is listed by *both*
  adjacent slices (each worker must be able to answer every vertex in its
  assigned range).  The router routes strictly by assigned range, so no edge
  is ever served twice; a slice manifest's ``total_edges`` counts its listed
  shards and therefore double-counts boundary shards relative to the parent.
- Slice identity (``index``/``of``/``src_lo``/``src_hi``) travels in the
  manifest's free-form ``metadata`` under a ``"slice"`` key; everything else
  (``n_vertices``, ``payload_columns``, ``name``) is inherited verbatim from
  the parent so a slice store answers with the parent's global id space.

Re-partitioning is idempotent: manifests are rewritten atomically and stale
slice directories from a previous, larger partition are removed.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.graphs.io import SHARD_MANIFEST, read_shard_manifest, write_shard_manifest

__all__ = ["partition_manifest"]

PathLike = Union[str, Path]


def _slice_boundaries(manifest: dict, n_slices: int) -> List[int]:
    """Edge-balanced interior boundaries at shard granularity.

    Cuts fall *between* shards (after the shard whose cumulative edge count
    first reaches the k/N quantile), so the auto-partition never splits a
    shard and the typical slice carries ~``total/N`` edges.  With fewer
    shards than slices the trailing slices come out empty — legal, and the
    router simply never routes to them.
    """
    shards = manifest["shards"]
    n_vertices = int(manifest["n_vertices"])
    if not shards:
        return [n_vertices] * (n_slices - 1)
    cumulative = np.cumsum([int(s["n_edges"]) for s in shards], dtype=np.int64)
    total = int(cumulative[-1])
    boundaries: List[int] = []
    previous = 0
    for k in range(1, n_slices):
        target = k * total / n_slices
        index = int(np.searchsorted(cumulative, target, side="left"))
        index = min(index, len(shards) - 1)
        boundary = int(shards[index]["src_max"]) + 1
        boundary = min(max(boundary, previous), n_vertices)
        boundaries.append(boundary)
        previous = boundary
    return boundaries


def partition_manifest(store_dir: PathLike, *,
                       n_slices: Optional[int] = None,
                       boundaries: Optional[Sequence[int]] = None,
                       destination: Optional[PathLike] = None,
                       prefix: str = "slice") -> List[dict]:
    """Write per-worker slice manifests for a compacted store.

    Parameters
    ----------
    store_dir:
        A compacted (manifest v2, source-sorted) shard directory.
    n_slices:
        Cut into this many contiguous slices with edge-balanced boundaries
        chosen at shard granularity.  Exactly one of *n_slices* /
        *boundaries* must be given.
    boundaries:
        Explicit interior boundaries (nondecreasing, each in
        ``[0, n_vertices]``); slice *i* is assigned
        ``[boundaries[i-1], boundaries[i])`` with 0 and ``n_vertices``
        implied at the ends.  Equal consecutive boundaries yield an empty
        slice.  Unlike the automatic cut, explicit boundaries may fall
        *inside* a shard's range — that shard is then listed by both
        neighbouring slices.
    destination:
        Directory receiving the ``<prefix>-NNN`` slice sub-directories
        (default ``store_dir/slices``).  Stale ``<prefix>-NNN`` directories
        from a previous partition are removed.
    prefix:
        Slice directory name prefix.

    Returns
    -------
    One descriptor per slice, in range order:
    ``{"directory", "index", "src_lo", "src_hi", "n_shards", "n_edges"}``.
    """
    store_dir = Path(store_dir)
    manifest = read_shard_manifest(store_dir)
    if manifest["format_version"] < 2 or manifest.get("sorted_by") != "source":
        raise ValueError(
            f"{store_dir} is an uncompacted per-block spill (no vertex "
            "ranges to slice); run repro.store.compact_shards on it first")
    if (n_slices is None) == (boundaries is None):
        raise ValueError("pass exactly one of n_slices / boundaries")
    n_vertices = int(manifest["n_vertices"])
    if boundaries is None:
        if n_slices < 1:
            raise ValueError(f"n_slices must be >= 1, got {n_slices}")
        interior = _slice_boundaries(manifest, int(n_slices))
    else:
        interior = [int(b) for b in boundaries]
        for previous, boundary in zip([0] + interior, interior):
            if boundary < previous or boundary > n_vertices:
                raise ValueError(
                    f"boundaries must be nondecreasing within "
                    f"[0, {n_vertices}], got {interior}")
    edges = [0] + interior + [n_vertices]
    ranges = list(zip(edges[:-1], edges[1:]))

    destination = Path(destination) if destination is not None else store_dir / "slices"
    destination.mkdir(parents=True, exist_ok=True)
    shards = manifest["shards"]
    src_min = np.asarray([int(s["src_min"]) for s in shards], dtype=np.int64)
    src_max = np.asarray([int(s["src_max"]) for s in shards], dtype=np.int64)

    result = []
    wanted = set()
    for index, (lo, hi) in enumerate(ranges):
        slice_dir = destination / f"{prefix}-{index:03d}"
        wanted.add(slice_dir.name)
        if lo < hi and len(shards):
            keep = np.flatnonzero((src_max >= lo) & (src_min <= hi - 1))
        else:
            keep = np.asarray([], dtype=np.int64)
        slice_dir.mkdir(exist_ok=True)
        listed = []
        for i in keep:
            entry = dict(shards[int(i)])
            entry["file"] = os.path.relpath(store_dir / entry["file"], slice_dir)
            listed.append(entry)
        n_edges = sum(int(entry["n_edges"]) for entry in listed)
        slice_manifest = {
            "format_version": manifest["format_version"],
            "kind": manifest.get("kind", "edge-shards"),
            "name": manifest.get("name", ""),
            "n_vertices": n_vertices,
            "total_edges": n_edges,
            "sorted_by": "source",
            "payload_columns": list(manifest["payload_columns"]),
            "shards": listed,
            "metadata": {
                **dict(manifest.get("metadata") or {}),
                "slice": {
                    "index": index,
                    "of": len(ranges),
                    "src_lo": int(lo),
                    "src_hi": int(hi),
                    "store": os.path.relpath(store_dir, slice_dir),
                },
            },
        }
        write_shard_manifest(slice_dir, slice_manifest)
        result.append({
            "directory": slice_dir,
            "index": index,
            "src_lo": int(lo),
            "src_hi": int(hi),
            "n_shards": len(listed),
            "n_edges": n_edges,
        })

    # Drop slice directories a previous (wider) partition left behind, so a
    # re-partition's fleet can't accidentally mount a stale slice.  Only
    # directories matching our own naming scheme are touched.
    stale = re.compile(rf"^{re.escape(prefix)}-\d+$")
    for entry in sorted(destination.iterdir()):
        if entry.is_dir() and stale.match(entry.name) and entry.name not in wanted:
            shutil.rmtree(entry)
    return result
