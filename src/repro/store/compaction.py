"""Shard compaction: per-block spills → source-sorted, size-targeted shards.

The streaming generation pipeline spills one ``.npy`` shard per
``(rank, block)`` pair (:class:`repro.graphs.io.NpyShardSink`): write-optimal,
but useless for queries — a consumer looking for one vertex's edges would have
to scan every shard.  :func:`compact_shards` turns that spill into a
*queryable* store with a bounded-memory external merge sort:

1. **run formation** — each input shard is loaded (one at a time), sorted by
   ``(src, dst)`` and written back as a sorted run; peak memory is one shard.
2. **k-way merge** — the runs are memory-mapped and merged in vectorized
   rounds: each round picks the smallest "chunk-end source" over all active
   runs as a watermark, drains every run up to it with one
   ``np.searchsorted`` per run, and lex-sorts the concatenated batch.  No
   per-edge Python loop; peak memory is ``n_runs × merge_chunk_edges`` edges
   plus one output shard.
3. **manifest v2** — output shards are cut at ``target_shard_edges`` and the
   manifest records each shard's ``[src_min, src_max]`` source-vertex range,
   which is what lets :class:`repro.store.ShardStore` binary-search its way to
   the one or two shards a query actually needs.

Payload columns ride along untouched: a spill whose manifest names extra
``payload_columns`` (``(m, 2 + k)`` shards) compacts to the same layout —
sort keys stay ``(src, dst)``, every merge and cut moves whole rows, and the
output manifest carries the column names forward.  Peak memory scales by the
row width, nothing else changes.

The manifest is published atomically (temp file + ``os.replace``) after the
shards, and any ``.npy`` file in the destination that the fresh manifest does
not list is deleted — a re-compaction with a coarser ``target_shard_edges``
cannot leave orphaned shards for directory globs to pick up.

Compacting an already-compacted store is idempotent (the sorted shards are
reused as merge runs directly, skipping phase 1) and re-sharding to a new
``target_shard_edges`` is just a re-run.

Under an active :mod:`repro.obs.trace` context the three phases record
timed spans (``compact.run_formation`` / ``compact.merge`` /
``compact.publish``) so a traced maintenance job shows where the wall
time went; without one the span calls are no-ops.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.graphs.io import (
    SHARD_MANIFEST,
    NpyShardSink,
    read_shard_manifest,
    write_shard_manifest,
)
from repro.obs import trace

__all__ = ["compact_shards", "MANIFEST_V2"]

PathLike = Union[str, Path]

#: Format version written by :func:`compact_shards`.
MANIFEST_V2 = 2

#: Glob matching the shard files a compacted store holds.
_COMPACT_SHARD_GLOB = "shard-*.npy"

#: Glob matching per-block spill shards (cleared from a reused output dir);
#: the sink that writes them owns the pattern.
_BLOCK_SHARD_GLOB = NpyShardSink._SHARD_GLOB

#: Temporary directory (inside the destination) holding sorted runs.
_RUNS_DIR = "_compact-runs"


def _sort_edges(edges: np.ndarray) -> np.ndarray:
    """Rows in ``(src, dst)`` lexicographic order, as contiguous ``int64``.

    Sort keys are always the two endpoint columns; any payload columns ride
    along with their row.
    """
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    if edges.shape[0] <= 1:
        return edges
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    return np.ascontiguousarray(edges[order])


class _ShardWriter:
    """Cuts a stream of sorted batches into ``target``-sized output shards."""

    def __init__(self, directory: Path, target: int):
        self.directory = directory
        self.target = target
        self.pending: List[np.ndarray] = []
        self.pending_edges = 0
        self.shards: List[dict] = []
        self.total_edges = 0

    def _flush(self, count: int) -> None:
        """Write the first *count* pending edges as one shard file."""
        block = np.concatenate(self.pending) if len(self.pending) > 1 \
            else self.pending[0]
        shard, rest = block[:count], block[count:]
        self.pending = [rest] if rest.shape[0] else []
        self.pending_edges = int(rest.shape[0])
        name = f"shard-{len(self.shards):06d}.npy"
        np.save(self.directory / name, np.ascontiguousarray(shard))
        self.shards.append({
            "file": name,
            "n_edges": int(shard.shape[0]),
            "src_min": int(shard[0, 0]),
            "src_max": int(shard[-1, 0]),
        })
        self.total_edges += int(shard.shape[0])

    def push(self, batch: np.ndarray) -> None:
        if batch.shape[0] == 0:
            return
        self.pending.append(batch)
        self.pending_edges += int(batch.shape[0])
        while self.pending_edges >= self.target:
            self._flush(self.target)

    def close(self) -> None:
        if self.pending_edges:
            self._flush(self.pending_edges)


def _merge_tie_group(segments: List[np.ndarray], writer: _ShardWriter,
                     merge_chunk_edges: int) -> None:
    """Merge same-source segments (one per run, sorted by dst) by destination.

    The second watermark level: a "hub" source whose edge group is larger
    than any chunk is merged with the same bounded-round scheme, keyed on the
    destination column, so even the hottest vertex never forces more than
    ``n_runs × merge_chunk_edges`` edges into one batch.
    """
    positions = [0] * len(segments)
    while True:
        active = [i for i, seg in enumerate(segments) if positions[i] < seg.shape[0]]
        if not active:
            return
        watermark = min(
            int(segments[i][min(positions[i] + merge_chunk_edges,
                                segments[i].shape[0]) - 1, 1])
            for i in active
        )
        parts = []
        for i in active:
            hi = int(np.searchsorted(segments[i][:, 1], watermark, side="right"))
            if hi > positions[i]:
                parts.append(np.asarray(segments[i][positions[i]:hi]))
                positions[i] = hi
        batch = parts[0] if len(parts) == 1 else np.concatenate(parts)
        writer.push(batch[np.argsort(batch[:, 1], kind="stable")])


def _merge_runs(runs: List[np.ndarray], writer: _ShardWriter,
                merge_chunk_edges: int) -> None:
    """Vectorized k-way merge of sorted runs into the shard writer.

    Each round picks the smallest chunk-end source vertex over all active
    runs (the watermark), drains every run's edges *below* it — at most one
    chunk per run, by the watermark's definition — and hands the tie group
    *at* the watermark to :func:`_merge_tie_group`, which applies the same
    bounded scheme on the destination column.  The watermark-defining run
    always advances by a full chunk, so the merge finishes in
    ``O(total / chunk)`` rounds with every batch capped at
    ``n_runs × merge_chunk_edges`` edges, and because all edges at sources
    ≤ watermark are consumed before the next round, the output is globally
    ``(src, dst)``-sorted.
    """
    positions = [0] * len(runs)
    while True:
        active = [i for i, run in enumerate(runs) if positions[i] < run.shape[0]]
        if not active:
            return
        watermark = min(
            int(runs[i][min(positions[i] + merge_chunk_edges, runs[i].shape[0]) - 1, 0])
            for i in active
        )
        parts = []
        ties = []
        for i in active:
            srcs = runs[i][:, 0]
            below = int(np.searchsorted(srcs, watermark, side="left"))
            if below > positions[i]:
                parts.append(np.asarray(runs[i][positions[i]:below]))
                positions[i] = below
            tie_stop = int(np.searchsorted(srcs, watermark, side="right"))
            if tie_stop > positions[i]:
                # Kept as a view (memory-mapped for on-disk runs): the tie
                # merge below streams it in bounded sub-slices.
                ties.append(runs[i][positions[i]:tie_stop])
                positions[i] = tie_stop
        if parts:
            batch = parts[0] if len(parts) == 1 else np.concatenate(parts)
            writer.push(_sort_edges(batch))
        if ties:
            _merge_tie_group(ties, writer, merge_chunk_edges)


def compact_shards(
    source: PathLike,
    destination: PathLike,
    *,
    target_shard_edges: int = 262_144,
    merge_chunk_edges: int = 65_536,
    metadata: Optional[dict] = None,
) -> dict:
    """Compact a shard directory into a source-sorted, range-indexed store.

    Reads any shard directory with a valid manifest (the per-block v1 spill of
    :class:`repro.graphs.io.NpyShardSink` / ``AsyncShardSink``, or an existing
    v2 store for re-sharding), merges its rows in ``(src, dst)`` order —
    payload columns travel with their row, unchanged — cuts them into shards
    of about *target_shard_edges* edges, and writes a **manifest v2** whose
    shard entries record the covered ``[src_min, src_max]`` source-vertex
    range and whose ``payload_columns`` carry the source's column names
    forward.  Peak memory is bounded by one input shard (run formation) plus
    ``n_runs × merge_chunk_edges`` rows and one output shard (merge) — the
    product edge list is never held whole.

    Parameters
    ----------
    source, destination:
        Input spill directory and output store directory (must differ).
        Stale shard files and manifest in *destination* are cleared first,
        mirroring the :class:`~repro.graphs.io.NpyShardSink` constructor; the
        new manifest is published atomically and any destination ``.npy`` it
        does not list is deleted afterwards.
    target_shard_edges:
        Edges per output shard; every shard except the last has exactly this
        many.
    merge_chunk_edges:
        Merge granularity; larger chunks mean fewer rounds but more
        per-round memory.
    metadata:
        Extra entries merged over the source manifest's ``metadata``.

    Returns
    -------
    dict
        The manifest v2 that was written.
    """
    source, destination = Path(source), Path(destination)
    if target_shard_edges < 1:
        raise ValueError(f"target_shard_edges must be >= 1, got {target_shard_edges}")
    if merge_chunk_edges < 1:
        raise ValueError(f"merge_chunk_edges must be >= 1, got {merge_chunk_edges}")
    src_manifest = read_shard_manifest(source)
    payload_columns = list(src_manifest["payload_columns"])
    n_columns = len(payload_columns)
    destination.mkdir(parents=True, exist_ok=True)
    if source.resolve() == destination.resolve():
        raise ValueError("compaction must write to a different directory "
                         "than its source")
    # Claim the destination for this run: drop the previous manifest first so
    # an interrupted compaction is unambiguous (no manifest = no store) and a
    # reader can never pair the old manifest with half-rewritten shards.
    for stale in (destination / SHARD_MANIFEST,
                  destination / (SHARD_MANIFEST + ".tmp")):
        if stale.exists():
            stale.unlink()
    for pattern in (_COMPACT_SHARD_GLOB, _BLOCK_SHARD_GLOB):
        for stale in destination.glob(pattern):
            stale.unlink()

    def _load_run(path: Path, mmap_mode: Optional[str] = None) -> np.ndarray:
        run = np.load(path, mmap_mode=mmap_mode)
        if run.ndim != 2 or run.shape[1] != n_columns:
            raise ValueError(
                f"{path}: shard has shape {run.shape} but the source manifest "
                f"payload_columns {payload_columns!r} require {n_columns} "
                "columns")
        return run

    already_sorted = src_manifest.get("sorted_by") == "source"
    runs_dir = destination / _RUNS_DIR
    writer = _ShardWriter(destination, int(target_shard_edges))
    try:
        if already_sorted:
            run_paths = [source / shard["file"]
                         for shard in src_manifest["shards"] if shard["n_edges"]]
        else:
            with trace.span("compact.run_formation",
                            n_shards=len(src_manifest["shards"])):
                runs_dir.mkdir(exist_ok=True)
                run_paths = []
                for index, shard in enumerate(src_manifest["shards"]):
                    if not shard["n_edges"]:
                        continue  # zero-edge ranks leave empty shards
                    path = runs_dir / f"run-{index:06d}.npy"
                    # Map the spill read-only; the sort's fancy-index gather
                    # in _sort_edges makes the one private copy run formation
                    # needs.
                    np.save(path, _sort_edges(
                        _load_run(source / shard["file"], mmap_mode="r")))
                    run_paths.append(path)
        with trace.span("compact.merge", n_runs=len(run_paths)):
            runs = [_load_run(path, mmap_mode="r") for path in run_paths]
            try:
                _merge_runs(runs, writer, int(merge_chunk_edges))
            finally:
                # Release the memory maps before the runs directory is
                # removed (deleting a mapped file fails on Windows).
                del runs
            writer.close()
    finally:
        if runs_dir.exists():
            shutil.rmtree(runs_dir)

    meta = dict(src_manifest.get("metadata") or {})
    if metadata:
        meta.update(metadata)
    meta["compaction"] = {
        "source_shards": len(src_manifest["shards"]),
        "target_shard_edges": int(target_shard_edges),
    }
    if writer.total_edges != int(src_manifest["total_edges"]):
        raise ValueError(
            f"compaction wrote {writer.total_edges} edges but the source "
            f"manifest promised {src_manifest['total_edges']}; the source "
            "spill is corrupt (no manifest was written)")
    manifest = {
        "format_version": MANIFEST_V2,
        "kind": "edge-shards",
        "name": src_manifest.get("name", ""),
        "n_vertices": int(src_manifest["n_vertices"]),
        "total_edges": writer.total_edges,
        "sorted_by": "source",
        "payload_columns": payload_columns,
        "shards": writer.shards,
        "metadata": meta,
    }
    with trace.span("compact.publish", n_shards=len(writer.shards)):
        write_shard_manifest(destination, manifest)
        # The manifest is the source of truth for directory-glob readers:
        # any .npy it does not list (e.g. finer-grained shards from a
        # previous compaction of this destination) is stale — discard it,
        # mirroring the v1 sink's constructor-time cleanup.
        listed = {shard["file"] for shard in writer.shards}
        for stray in destination.glob("*.npy"):
            if stray.name not in listed:
                stray.unlink()
    return manifest
