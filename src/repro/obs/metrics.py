"""Dependency-free metrics registry: counters, gauges, histograms.

Every instrument lives in a :class:`MetricsRegistry` under a dotted
``snake_case`` name (``serve.requests``, ``store.shard_reads``) plus an
optional label set (``op="degrees"``).  ``registry.counter(name,
**labels)`` is get-or-create, so instrument handles can be recreated
anywhere without double-registering a series.

Concurrency contract: the registry lock guards only series
creation/lookup; each instrument carries its own *leaf* lock for
mutation, and fn-gauges are evaluated outside the registry lock at
snapshot time — so an fn-gauge may acquire an interior lock (the shard
store's cache lock, say) without ever deadlocking against a concurrent
``counter.inc()``.

:func:`render_prometheus` turns a registry snapshot into Prometheus
text exposition (dots become underscores); the snapshot and the text
carry the same numbers by construction, which
``benchmarks/bench_query_server.py`` asserts as a round-trip.
"""

from __future__ import annotations

import re
import time
from bisect import bisect_left
from math import ceil
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.lint.runtime import new_lock

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "render_prometheus",
]


class MetricsError(ValueError):
    """Bad metric name, label set, or conflicting re-registration."""


#: Dotted snake_case: at least two segments, so every metric is
#: namespaced by its layer (``serve.``, ``store.``, ``fleet.``).
_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")
_LABEL = re.compile(r"^[a-z][a-z0-9_]*$")


def _series_key(name: str, labels: Dict[str, str]) -> Tuple:
    return (name, tuple(sorted(labels.items())))


def _check_name(name: str) -> None:
    if not isinstance(name, str) or not _NAME.match(name):
        raise MetricsError(
            f"metric name {name!r} is not dotted snake_case "
            "(expected e.g. 'serve.requests')")


def _check_labels(labels: Dict[str, object]) -> Dict[str, str]:
    out = {}
    for key, value in labels.items():
        if not _LABEL.match(key):
            raise MetricsError(f"label name {key!r} is not snake_case")
        out[key] = str(value)
    return out


class Counter:
    """Monotonic counter.  ``inc`` is thread-safe (leaf lock)."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = labels
        self._lock = new_lock("obs.instrument")
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Point-in-time value: either set/``set_max`` (watermarks) or
    backed by a callable evaluated at read time (``fn=...``)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value", "_fn")

    def __init__(self, name: str, labels: Dict[str, str],
                 fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.labels = labels
        self._lock = new_lock("obs.instrument")
        self._value = 0
        self._fn = fn

    def set(self, value) -> None:
        if self._fn is not None:
            raise MetricsError(f"gauge {self.name} is callback-backed")
        with self._lock:
            self._value = value

    def set_max(self, value) -> None:
        """Watermark update: keep the largest value seen since reset."""
        if self._fn is not None:
            raise MetricsError(f"gauge {self.name} is callback-backed")
        with self._lock:
            if value > self._value:
                self._value = value

    def read(self):
        if self._fn is not None:
            return self._fn()
        with self._lock:
            return self._value

    @property
    def value(self):
        return self.read()

    def reset(self) -> None:
        if self._fn is None:
            with self._lock:
                self._value = 0


class Histogram:
    """Fixed-bucket histogram with derived percentile summaries.

    ``bounds`` are inclusive upper bucket bounds; one overflow bucket is
    implicit.  :meth:`time` returns a context manager that records the
    elapsed microseconds — the only sanctioned way for the serve/store
    layers to measure a latency (they must not call ``time.perf_counter``
    themselves).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "unit", "_lock", "_counts",
                 "_count", "_sum", "_max")

    def __init__(self, name: str, labels: Dict[str, str],
                 bounds: Iterable[float], unit: str = ""):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise MetricsError(
                f"histogram {name} bounds must be strictly increasing")
        self.unit = unit
        self._lock = new_lock("obs.instrument")
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0
        self._max = 0

    def record(self, value) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    def time(self) -> "_Timer":
        return _Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def _percentile_locked(self, q: float):
        # Upper bucket bound of the q-quantile, clamped to the observed
        # max so a sparse histogram never reports beyond its data.
        rank = max(1, ceil(q * self._count))
        cumulative = 0
        for index, n in enumerate(self._counts):
            cumulative += n
            if cumulative >= rank:
                if index < len(self.bounds):
                    return min(self.bounds[index], self._max)
                return self._max
        return self._max

    def summary(self) -> Dict[str, object]:
        """The stats-surface view: count/mean/max, p50/p95/p99 derived
        from the buckets, and labelled bucket counts.  Keys carry the
        unit suffix (``mean_us``) so the wire shape predates-compatible
        with the old private histogram."""
        unit = self.unit
        suffix = f"_{unit}" if unit else ""
        with self._lock:
            if not self._count:
                mean = 0.0
            else:
                mean = round(self._sum / self._count, 1)
            buckets = {}
            for bound, n in zip(self.bounds, self._counts):
                buckets[f"<={bound}{unit}"] = n
            buckets[f">{self.bounds[-1]}{unit}"] = self._counts[-1]
            out = {
                "count": self._count,
                f"mean{suffix}": mean,
                f"max{suffix}": self._max,
                f"p50{suffix}": self._percentile_locked(0.50) if self._count else 0,
                f"p95{suffix}": self._percentile_locked(0.95) if self._count else 0,
                f"p99{suffix}": self._percentile_locked(0.99) if self._count else 0,
                "buckets": buckets,
            }
        return out

    def snapshot(self) -> Dict[str, object]:
        """Raw series view used by the registry snapshot / Prometheus."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
            }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0
            self._max = 0


class _Timer:
    """``with hist.time() as t: ...`` — records elapsed µs on exit and
    leaves it readable as ``t.elapsed_us`` (slow-query thresholds)."""

    __slots__ = ("_histogram", "_start_ns", "elapsed_us")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start_ns = 0
        self.elapsed_us = 0

    def __enter__(self) -> "_Timer":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_us = (time.perf_counter_ns() - self._start_ns) // 1000
        self._histogram.record(self.elapsed_us)


class MetricsRegistry:
    """Get-or-create home for every instrument of one process view.

    A server and the store it owns share one registry, so ``stats()``
    on either is a *view* over the same series rather than a private
    dict; ``snapshot()`` / ``reset()`` are the only whole-registry
    operations.
    """

    def __init__(self):
        self._lock = new_lock("obs.registry")
        self._series: Dict[Tuple, object] = {}

    def _get_or_create(self, cls, name: str, labels: Dict[str, object],
                       factory: Callable[[], object]):
        _check_name(name)
        clean = _check_labels(labels)
        key = _series_key(name, clean)
        with self._lock:
            found = self._series.get(key)
            if found is not None:
                if not isinstance(found, cls):
                    raise MetricsError(
                        f"metric {name} already registered as {found.kind}")
                return found, clean, False
            instrument = factory() if factory is not None else None
            if instrument is None:
                instrument = cls(name, clean)
            self._series[key] = instrument
            return instrument, clean, True

    def counter(self, name: str, **labels) -> Counter:
        instrument, _, _ = self._get_or_create(Counter, name, labels, None)
        return instrument

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None,
              **labels) -> Gauge:
        clean = _check_labels(labels)
        instrument, _, created = self._get_or_create(
            Gauge, name, labels, lambda: Gauge(name, clean, fn=fn))
        if not created and fn is not None and instrument._fn is not fn:
            raise MetricsError(
                f"gauge {name} already registered with a different callback")
        return instrument

    def histogram(self, name: str, bounds: Iterable[float], *,
                  unit: str = "", **labels) -> Histogram:
        clean = _check_labels(labels)
        bounds = tuple(bounds)
        instrument, _, created = self._get_or_create(
            Histogram, name, labels,
            lambda: Histogram(name, clean, bounds, unit=unit))
        if not created and instrument.bounds != bounds:
            raise MetricsError(
                f"histogram {name} already registered with different bounds")
        return instrument

    def _instruments(self) -> List[object]:
        with self._lock:
            return sorted(self._series.values(),
                          key=lambda i: (i.name, tuple(sorted(i.labels.items()))))

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """All series as plain JSON-able data.  Instrument reads happen
        outside the registry lock (fn-gauges may take interior locks)."""
        counters, gauges, histograms = [], [], []
        for instrument in self._instruments():
            entry = {"name": instrument.name, "labels": dict(instrument.labels)}
            if instrument.kind == "counter":
                entry["value"] = instrument.value
                counters.append(entry)
            elif instrument.kind == "gauge":
                entry["value"] = instrument.read()
                gauges.append(entry)
            else:
                entry.update(instrument.snapshot())
                histograms.append(entry)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def reset(self) -> None:
        """Zero every counter/histogram and settable gauge (fn-gauges
        reflect live state and are left alone)."""
        for instrument in self._instruments():
            instrument.reset()


def _prom_name(name: str) -> str:
    return name.replace(".", "_")


def _prom_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in items)
    return "{" + body + "}"


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def render_prometheus(snapshot: Dict[str, List[Dict[str, object]]]) -> str:
    """Prometheus text exposition of a :meth:`MetricsRegistry.snapshot`.

    Same numbers, second surface: histogram buckets become cumulative
    ``_bucket{le=...}`` series (closed with the mandatory ``+Inf`` bucket)
    plus ``_sum`` / ``_count``.  Every metric is announced once with
    ``# HELP`` / ``# TYPE`` header lines — real scrapers treat a sample
    without them as an untyped unknown — and the help text carries the
    registry's dotted source name, so an operator can map the mangled
    exposition name back to the series the code created.
    """
    lines: List[str] = []
    announced = set()

    def header(name: str, source: str, kind: str) -> None:
        if name not in announced:
            announced.add(name)
            lines.append(f"# HELP {name} repro registry series "
                         f"{source} ({kind})")
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = _prom_name(entry["name"])
        header(name, entry["name"], "counter")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_fmt(entry['value'])}")
    for entry in snapshot.get("gauges", ()):
        name = _prom_name(entry["name"])
        header(name, entry["name"], "gauge")
        lines.append(f"{name}{_prom_labels(entry['labels'])} "
                     f"{_fmt(entry['value'])}")
    for entry in snapshot.get("histograms", ()):
        name = _prom_name(entry["name"])
        header(name, entry["name"], "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, n in zip(entry["bounds"], entry["counts"]):
            cumulative += n
            lines.append(f"{name}_bucket{_prom_labels(labels, ('le', _fmt(bound)))} "
                         f"{cumulative}")
        cumulative += entry["counts"][-1]
        lines.append(f"{name}_bucket{_prom_labels(labels, ('le', '+Inf'))} "
                     f"{cumulative}")
        lines.append(f"{name}_sum{_prom_labels(labels)} {_fmt(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
