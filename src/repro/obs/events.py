"""Flight-recorder event log: a bounded ring buffer of structured events.

The third observability pillar next to :mod:`repro.obs.metrics` (how much /
how fast) and :mod:`repro.obs.trace` (where one request spent its time):
the :class:`EventLog` records *what happened around* the requests — a
replica died, the router failed over, the store evicted a hot shard, a
request crossed the slow threshold, a server began its graceful shutdown —
as small JSON-able dicts in arrival order, capped at ``max_events`` so a
misbehaving fleet can never grow the log without bound (the overflow is
counted, not silently dropped).

Event records are flat dicts::

    {"seq": 17, "ts_us": 1754650000123456, "kind": "fleet.failover",
     "trace": "9f2c...", "worker": 1, ...}

* ``seq`` is a per-log monotonically increasing sequence number (the
  tie-breaker when merging logs recorded on one host);
* ``ts_us`` is wall-clock microseconds (``time.time_ns() // 1000``) — wall
  clock, not monotonic, so events from the router and its workers
  interleave into one timeline;
* ``kind`` follows the registry's dotted ``layer.noun`` naming
  (``fleet.failover``, ``fleet.replica_death``, ``store.shard_evicted``,
  ``serve.slow_request``, ``serve.shutdown``);
* ``trace`` is stamped automatically from the active
  :func:`repro.obs.trace.current` context (or passed explicitly by a
  caller whose trace context has already been exited), linking the event
  into the request's span tree.

The lock is created through :func:`repro.lint.runtime.new_lock` under the
class name ``obs.events`` and :meth:`emit` acquires no other lock while
holding it — the event log is a *leaf* in the lock-order digraph, so any
layer (the store under churn, the router mid-failover) can emit without
widening the ordering relation the sanitizer checks.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable, List, Optional, Sequence

from repro.lint.runtime import new_lock
from repro.obs import trace

__all__ = ["EventLog", "merge_events"]

#: The event kinds the serving stack emits (informational — the log accepts
#: any dotted kind; new emitters should extend this list and the ROADMAP).
KNOWN_EVENT_KINDS = (
    "fleet.failover",
    "fleet.replica_death",
    "store.shard_evicted",
    "serve.slow_request",
    "serve.shutdown",
)


class EventLog:
    """Bounded ring buffer of structured operational events.

    Parameters
    ----------
    max_events:
        Cap on retained events (≥ 1).  Emitting past the cap drops the
        *oldest* event and increments :attr:`dropped` — a flight recorder
        keeps the recent past, and the drop counter shows how far back it
        reaches.
    """

    def __init__(self, max_events: int = 512):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = int(max_events)
        self._lock = new_lock("obs.events")
        self._events: "deque[dict]" = deque()
        self._dropped = 0
        self._seq = 0

    def emit(self, kind: str, *, trace_id: Optional[str] = None,
             **attrs) -> dict:
        """Record one event; returns the stored record.

        ``trace_id`` defaults to the active trace context's id (a no-op
        without one).  Passing it explicitly serves emitters whose span
        already closed — e.g. the server's slow-request hook, which fires
        after the serve span exits but still knows the request's id.
        """
        if trace_id is None:
            active = trace.current()
            if active is not None:
                trace_id = active.trace_id
        record = {"seq": 0, "ts_us": time.time_ns() // 1000,
                  "kind": str(kind)}
        if trace_id is not None:
            record["trace"] = str(trace_id)
        record.update(attrs)
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._events.append(record)
            if len(self._events) > self.max_events:
                self._events.popleft()
                self._dropped += 1
        return record

    def tail(self, limit: Optional[int] = None, *,
             kind: Optional[str] = None) -> List[dict]:
        """The most recent events, oldest first.

        ``limit`` keeps the newest *limit* (after filtering); ``kind``
        restricts to one event kind.  Returned dicts are copies — callers
        (the wire, tests) can hold them past later emits.
        """
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e["kind"] == kind]
        if limit is not None:
            events = events[-int(limit):] if limit > 0 else []
        return [dict(e) for e in events]

    def clear(self) -> None:
        """Drop every retained event and zero the drop counter (the
        sequence keeps counting — merged timelines stay unambiguous)."""
        with self._lock:
            self._events.clear()
            self._dropped = 0

    @property
    def dropped(self) -> int:
        """Events lost to the ring-buffer cap since the last clear."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def merge_events(streams: Iterable[Sequence[dict]],
                 *, limit: Optional[int] = None) -> List[dict]:
    """Interleave several event lists into one wall-clock timeline.

    Orders by ``(ts_us, seq)`` — wall-clock first so router and worker
    events weave correctly, sequence as the tie-breaker for events stamped
    in the same microsecond on one log.  ``limit`` keeps the newest
    *limit* events of the merged timeline (the rollup analogue of
    :meth:`EventLog.tail`).
    """
    merged = [event for stream in streams for event in stream]
    merged.sort(key=lambda e: (e.get("ts_us", 0), e.get("seq", 0)))
    if limit is not None and limit >= 0:
        merged = merged[-int(limit):] if limit > 0 else []
    return merged
