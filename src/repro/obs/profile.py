"""Continuous sampling profiler: what the serving threads are executing.

Metrics say a routed query was slow; traces say which span the time went
to; the :class:`SamplingProfiler` says what the process was *doing* — a
background daemon thread samples ``sys._current_frames()`` at a
configurable rate and folds each thread's stack into a bounded aggregate:

* frames are collapsed to ``repro`` modules (everything outside the
  package — asyncio plumbing, selector waits, numpy internals — is
  dropped; a thread with no repro frame on its stack is counted under the
  ``~external`` pseudo-stack so idle-vs-busy is still visible);
* stacks are keyed by **thread role**, classified from the thread names
  the stack already uses — ``shard-serve`` (the asyncio event loop),
  ``shard-decode*`` (the store's decode pool), ``fleet-fanout*`` (the
  router's scatter pool), ``async-shard-writer`` (the spill writer), and
  the profiler's own sampling thread;
* the aggregate is bounded (``max_stacks`` distinct stacks per role;
  overflow folds into ``~overflow``), so a pathological workload cannot
  grow the profile without bound.

:class:`ProfileStats` is the aggregate itself: plain data with
accumulator-style ``+`` — the range router merges per-worker profiles
exactly like it merges trace recorders, ``sum(worker_profiles, start)`` —
plus :meth:`collapsed` emitting the folded-stack text format flamegraph
tools ingest (``role;module:func;module:func count`` lines).

The profiler's lock goes through :func:`repro.lint.runtime.new_lock`
under the class name ``obs.profiler`` and is a leaf: sampling holds it
only to fold the already-collected stacks, and never acquires another
lock under it.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Dict, List, Optional

from repro.lint.runtime import new_lock

__all__ = ["ProfileStats", "SamplingProfiler", "thread_role"]

#: Stack key for a thread whose sample held no repro frame at all.
EXTERNAL_STACK = "~external"
#: Stack key distinct stacks beyond ``max_stacks`` fold into.
OVERFLOW_STACK = "~overflow"

#: Thread-name prefix -> role, most specific first.  These are the names
#: the serving stack already assigns (ThreadedServer's loop thread, the
#: decode/fan-out pools' ``thread_name_prefix``, the async spill writer);
#: the profiler names its own thread ``repro-profiler``.
_ROLE_PREFIXES = (
    ("shard-decode", "decode_pool"),
    ("shard-serve", "event_loop"),
    ("fleet-fanout", "fanout_pool"),
    ("async-shard-writer", "writer"),
    ("repro-profiler", "profiler"),
    ("MainThread", "main"),
)

_PACKAGE_MARKER = f"{os.sep}repro{os.sep}"


def thread_role(name: str) -> str:
    """Classify a thread name into the profile's role key."""
    for prefix, role in _ROLE_PREFIXES:
        if name.startswith(prefix):
            return role
    return "other"


def _fold_frame(frame) -> Optional[str]:
    """``module:function`` label for one frame, or ``None`` outside repro."""
    filename = frame.f_code.co_filename
    marker = filename.rfind(_PACKAGE_MARKER)
    if marker < 0:
        return None
    module = filename[marker + 1:]
    if module.endswith(".py"):
        module = module[:-3]
    module = module.replace(os.sep, ".")
    return f"{module}:{frame.f_code.co_name}"


def fold_stack(frame) -> str:
    """Collapse one thread's live stack to its repro frames, root first.

    The returned string is one flamegraph folded-stack path
    (``repro.serve.server:_run_store;repro.store.query:_entry``); a stack
    with no repro frame folds to :data:`EXTERNAL_STACK`.
    """
    labels: List[str] = []
    while frame is not None:
        label = _fold_frame(frame)
        if label is not None:
            labels.append(label)
        frame = frame.f_back
    if not labels:
        return EXTERNAL_STACK
    labels.reverse()
    return ";".join(labels)


class ProfileStats:
    """A folded-stack aggregate: sample count plus per-role stack counts.

    Plain JSON-able data with value semantics — :meth:`as_dict` /
    :meth:`from_dict` round-trip over the wire, ``+`` merges two
    aggregates (the router's rollup), ``==`` compares contents.
    """

    __slots__ = ("samples", "stacks")

    def __init__(self, samples: int = 0,
                 stacks: Optional[Dict[str, Dict[str, int]]] = None):
        self.samples = int(samples)
        self.stacks: Dict[str, Dict[str, int]] = {
            role: dict(counts) for role, counts in (stacks or {}).items()}

    def record(self, role: str, stack: str, *,
               max_stacks: Optional[int] = None) -> None:
        """Count one sampled stack under *role*, folding into
        :data:`OVERFLOW_STACK` once *max_stacks* distinct stacks exist."""
        counts = self.stacks.setdefault(role, {})
        if (max_stacks is not None and stack not in counts
                and len(counts) >= max_stacks):
            stack = OVERFLOW_STACK
        counts[stack] = counts.get(stack, 0) + 1

    def __add__(self, other: "ProfileStats") -> "ProfileStats":
        if not isinstance(other, ProfileStats):
            return NotImplemented
        merged = ProfileStats(self.samples + other.samples, self.stacks)
        for role, counts in other.stacks.items():
            into = merged.stacks.setdefault(role, {})
            for stack, count in counts.items():
                into[stack] = into.get(stack, 0) + count
        return merged

    def __radd__(self, other) -> "ProfileStats":
        if other == 0:  # sum() support
            return ProfileStats(self.samples, self.stacks)
        return NotImplemented

    def __eq__(self, other) -> bool:
        if not isinstance(other, ProfileStats):
            return NotImplemented
        return self.samples == other.samples and self.stacks == other.stacks

    def __repr__(self) -> str:
        n_stacks = sum(len(counts) for counts in self.stacks.values())
        return (f"ProfileStats(samples={self.samples}, "
                f"roles={sorted(self.stacks)}, stacks={n_stacks})")

    def as_dict(self) -> dict:
        """Wire form: ``{"samples": n, "stacks": {role: {stack: count}}}``."""
        return {"samples": self.samples,
                "stacks": {role: dict(counts)
                           for role, counts in sorted(self.stacks.items())}}

    @classmethod
    def from_dict(cls, payload: dict) -> "ProfileStats":
        return cls(payload.get("samples", 0), payload.get("stacks") or {})

    def collapsed(self) -> str:
        """Folded-stack text (``role;stack count`` lines, sorted) — the
        input format of flamegraph renderers; the role rides as the root
        frame so one graph shows every pool side by side."""
        lines = [f"{role};{stack} {count}"
                 for role, counts in sorted(self.stacks.items())
                 for stack, count in sorted(counts.items())]
        return "\n".join(lines) + ("\n" if lines else "")


class SamplingProfiler:
    """Background-thread sampling profiler over ``sys._current_frames()``.

    Parameters
    ----------
    hz:
        Sampling rate (samples per second, > 0).  ``start(hz=...)`` can
        override per run.
    max_stacks:
        Bound on distinct stacks kept per thread role; the tail folds
        into :data:`OVERFLOW_STACK`.

    ``start()`` / ``stop()`` are idempotent and thread-safe; ``stop()``
    joins the sampling thread, so a snapshot taken afterwards is frozen —
    the property the router's merge test relies on.  The aggregate
    survives across runs until :meth:`reset`.
    """

    def __init__(self, hz: float = 67.0, *, max_stacks: int = 256):
        if hz <= 0:
            raise ValueError(f"hz must be > 0, got {hz}")
        self.hz = float(hz)
        self.max_stacks = int(max_stacks)
        self._lock = new_lock("obs.profiler")
        self._stats = ProfileStats()
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self, *, hz: Optional[float] = None) -> bool:
        """Arm the sampling thread; ``True`` if this call started it
        (``False``: already running — the rate is left untouched)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return False
            if hz is not None:
                if hz <= 0:
                    raise ValueError(f"hz must be > 0, got {hz}")
                self.hz = float(hz)
            self._stop_event = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True)
            self._thread.start()
            return True

    def stop(self) -> bool:
        """Disarm and join the sampler; ``True`` if it was running.
        After ``stop()`` returns, the aggregate no longer changes."""
        with self._lock:
            thread, self._thread = self._thread, None
            self._stop_event.set()
        if thread is None or not thread.is_alive():
            return False
        # Join outside the lock: the sampler takes it to fold each sample.
        thread.join()
        return True

    def snapshot(self) -> ProfileStats:
        """A value copy of the aggregate (safe to keep across samples)."""
        with self._lock:
            return ProfileStats(self._stats.samples, self._stats.stacks)

    def reset(self) -> None:
        with self._lock:
            self._stats = ProfileStats()

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        interval = 1.0 / self.hz
        stop_event = self._stop_event
        while not stop_event.wait(interval):
            self._sample_once()

    def _sample_once(self) -> None:
        names = {thread.ident: thread.name
                 for thread in threading.enumerate()}
        # Snapshot the frames *before* taking the fold lock: folding is
        # pure reads over the captured frame objects.
        frames = sys._current_frames()
        folded = [(thread_role(names.get(ident, "other")), fold_stack(frame))
                  for ident, frame in frames.items()]
        del frames
        with self._lock:
            self._stats.samples += 1
            for role, stack in folded:
                self._stats.record(role, stack, max_stacks=self.max_stacks)
