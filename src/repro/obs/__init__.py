"""Observability layer: one metrics registry, one tracing surface.

``repro.obs`` is the single home for telemetry primitives.  The serving
and store layers never keep private counter dicts or call
``time.perf_counter`` directly (``tests/test_conventions.py`` lints
this); they create instruments on a :class:`MetricsRegistry` and time
work through :meth:`Histogram.time` or :func:`repro.obs.trace.span`.

* :mod:`repro.obs.metrics` — named counters / gauges / fixed-bucket
  histograms with dotted ``snake_case`` names and label sets,
  thread-safe snapshot/reset, Prometheus text rendering.
* :mod:`repro.obs.trace` — request-scoped trace IDs with timed spans,
  propagated across threads via ``contextvars`` and across the wire via
  the additive ``"trace"`` request key.
* :mod:`repro.obs.events` — a bounded flight-recorder ring buffer of
  structured operational events (failovers, evictions, slow requests),
  each stamped with the active trace id.
* :mod:`repro.obs.profile` — a continuous sampling profiler folding
  ``sys._current_frames()`` into bounded per-thread-role stack
  aggregates that merge with ``+`` across a fleet.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.trace import (
    TraceRecorder,
    activate,
    current,
    new_trace_id,
    span,
    start_trace,
)
from repro.obs.events import EventLog, merge_events
from repro.obs.profile import ProfileStats, SamplingProfiler

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "ProfileStats",
    "SamplingProfiler",
    "TraceRecorder",
    "activate",
    "current",
    "merge_events",
    "new_trace_id",
    "render_prometheus",
    "span",
    "start_trace",
]
