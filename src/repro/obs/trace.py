"""Request-scoped distributed tracing: trace IDs, timed spans, recorders.

A *trace* is a tree of timed spans identified by a shared hex trace ID.
The active trace travels in a :mod:`contextvars` variable, so it follows
``await`` inside one asyncio task and can be carried onto worker threads
with ``contextvars.copy_context()`` (``loop.run_in_executor`` does NOT
propagate context by itself — the serve layer copies explicitly at its
submit points).

Across the wire the trace rides the additive ``"trace"`` request key
(``{"id": <trace_id>, "span": <parent_span_id>}``) — an optional key,
so no ``PROTOCOL_VERSION`` bump (PR 5 rules).  Each server records its
own spans into a bounded :class:`TraceRecorder` and serves them back
through the ``trace`` wire op; the range router additionally merges the
per-worker recorders, so one routed query yields the full tree
client → router → per-worker attempt → worker serve → shard decode.

When no trace is active, :func:`span` is a no-op context manager — the
guard that keeps instrumentation overhead off the untraced hot path.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.lint.runtime import new_lock

__all__ = [
    "TraceContext",
    "TraceRecorder",
    "activate",
    "adopt_leaf_span",
    "adopt_span",
    "current",
    "new_span_id",
    "new_trace_id",
    "span",
    "start_trace",
]


def new_trace_id() -> str:
    return os.urandom(8).hex()


#: Span ids are a random per-process prefix + a process-local counter:
#: unique across the processes whose spans merge into one tree (router +
#: workers) without paying an ``os.urandom`` syscall per span — span
#: creation is on the per-request hot path and budgeted at ≤ 5% overhead.
_SPAN_PREFIX = os.urandom(3).hex()
_SPAN_COUNTER = itertools.count(1)  # next() is atomic under the GIL


def new_span_id() -> str:
    return f"{_SPAN_PREFIX}{next(_SPAN_COUNTER) & 0xFFFFFF:06x}"


class TraceContext:
    """The active (trace_id, span_id, recorder) triple for this context."""

    __slots__ = ("trace_id", "span_id", "recorder")

    def __init__(self, trace_id: str, span_id: Optional[str],
                 recorder: "TraceRecorder"):
        self.trace_id = trace_id
        self.span_id = span_id
        self.recorder = recorder


_STATE: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_trace_context", default=None)


def current() -> Optional[TraceContext]:
    """The active trace context, or ``None`` (tracing disabled here)."""
    return _STATE.get()


class TraceRecorder:
    """Bounded, thread-safe store of completed spans keyed by trace ID.

    Oldest traces are evicted once ``max_traces`` is exceeded; a single
    runaway trace is capped at ``max_spans`` (the cap is recorded on the
    trace's first dropped span so truncation is visible, not silent).
    """

    def __init__(self, max_traces: int = 128, max_spans: int = 2048):
        self.max_traces = int(max_traces)
        self.max_spans = int(max_spans)
        self._lock = new_lock("obs.trace_recorder")
        self._traces: "OrderedDict[str, List[dict]]" = OrderedDict()
        self._truncated: set = set()

    def record(self, span_record: dict) -> None:
        # Fast path, no lock: dict lookup and list.append are each atomic
        # under the GIL, so a known trace below its cap appends directly
        # (the cap may overshoot by a few spans under contention — it is a
        # memory guard, not an exact count).  First-seen traces, eviction,
        # and cap enforcement take the lock.  Entries are either finished
        # record dicts or :class:`_LeafSpan` objects that materialize
        # lazily in :meth:`spans` — read time, not the request hot path.
        spans = self._traces.get(span_record["trace"]
                                 if type(span_record) is dict
                                 else span_record.trace_id)
        if spans is not None and len(spans) < self.max_spans:
            spans.append(span_record)
            return
        self._record_slow(span_record)

    def _record_slow(self, span_record) -> None:
        trace_id = (span_record["trace"] if type(span_record) is dict
                    else span_record.trace_id)
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = self._traces[trace_id] = []
                while len(self._traces) > self.max_traces:
                    dropped, _ = self._traces.popitem(last=False)
                    self._truncated.discard(dropped)
            if len(spans) >= self.max_spans:
                if trace_id not in self._truncated:
                    self._truncated.add(trace_id)
                    spans.append({"trace": trace_id, "span": "",
                                  "parent": None, "name": "trace.truncated",
                                  "status": "error",
                                  "error": f"span cap {self.max_spans} hit"})
                return
            spans.append(span_record)

    def spans(self, trace_id: str) -> List[dict]:
        with self._lock:
            return [entry if type(entry) is dict else entry.as_record()
                    for entry in self._traces.get(trace_id, ())]

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self._truncated.clear()


class activate:
    """Adopt an incoming trace (server side of the ``"trace"`` key):
    spans opened inside record into *recorder* with *parent_span_id* as
    their parent.

    A slotted class context manager, not ``@contextmanager``: activation
    runs once per traced request and the generator protocol is measurable
    there.
    """

    __slots__ = ("_ctx", "_token")

    def __init__(self, recorder: TraceRecorder, trace_id: str,
                 parent_span_id: Optional[str] = None):
        self._ctx = TraceContext(trace_id, parent_span_id, recorder)

    def __enter__(self) -> None:
        self._token = _STATE.set(self._ctx)
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        _STATE.reset(self._token)
        return False


class _NullSpan:
    """The inactive-trace span: enters to ``None``, records nothing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span: a slotted context manager on the traced hot path."""

    __slots__ = ("_ctx", "_token", "_start", "record")

    def __init__(self, ctx: TraceContext, name: str, attrs: dict):
        record = {
            "trace": ctx.trace_id,
            "span": new_span_id(),
            "parent": ctx.span_id,
            "name": name,
            "start_us": time.time_ns() // 1000,
        }
        for key, value in attrs.items():
            record[key] = (value if isinstance(value, (int, float, bool))
                           else str(value))
        self._ctx = ctx
        self.record = record

    def __enter__(self) -> dict:
        self._token = _STATE.set(TraceContext(
            self._ctx.trace_id, self.record["span"], self._ctx.recorder))
        self._start = time.perf_counter_ns()
        return self.record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self.record
        record["elapsed_us"] = (time.perf_counter_ns() - self._start) // 1000
        if exc_type is None:
            record["status"] = "ok"
        else:
            record["status"] = "error"
            record["error"] = f"{exc_type.__name__}: {exc}"
        _STATE.reset(self._token)
        self._ctx.recorder.record(record)
        return False  # the span observes the exception; it never eats it


def span(name: str, **attrs):
    """A timed span under the active trace; no-op when none is active.

    Yields the mutable span record (or ``None`` when inactive) so
    callers may attach attributes mid-flight.  An exception marks the
    span ``status="error"`` (with the exception text) and re-raises.
    """
    ctx = _STATE.get()
    if ctx is None:
        return _NULL_SPAN
    return _Span(ctx, name, attrs)


def adopt_span(recorder: TraceRecorder, trace_id: str,
               parent_span_id: Optional[str], name: str, **attrs):
    """Adopt an incoming trace AND open its first span in one context
    switch — equivalent to ``activate(...)`` + ``span(...)`` but with a
    single contextvar set/reset.  The server uses this per traced request,
    where the nested pair is measurable against the ≤ 5% overhead budget.
    """
    return _Span(TraceContext(trace_id, parent_span_id, recorder),
                 name, attrs)


class _LeafSpan:
    """A span that cannot have children: no contextvar switch at all.

    For handlers whose work never opens nested spans (the coalesced
    scalar ops — their batch flush runs on the executor without a copied
    context), skipping the ``set``/``reset`` pair keeps the traced
    scalar hot path inside the overhead budget.  Inner code that *does*
    call :func:`span` under a leaf span records under the leaf's parent,
    not the leaf — use :func:`adopt_span` wherever children are possible.

    A leaf span is also *lazy*: in the request window it only stamps ids
    and clocks into slots; the record dict (key coercion, string
    formatting) is built by :meth:`as_record` when the recorder is read.
    On a one-core box the serving threads ping-pong on context switches,
    so every in-window microsecond shows up multiplied in round-trip
    time — the hot path does the minimum and the read path pays the rest.
    """

    __slots__ = ("_recorder", "_start", "trace_id", "span_id", "parent",
                 "name", "attrs", "start_us", "elapsed_us", "error")

    def __init__(self, recorder: TraceRecorder, trace_id: str,
                 parent_span_id: Optional[str], name: str, attrs: dict):
        self._recorder = recorder
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent = parent_span_id
        self.name = name
        self.attrs = attrs
        self.start_us = time.time_ns() // 1000
        self.error = None

    def __enter__(self) -> "_LeafSpan":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_us = (time.perf_counter_ns() - self._start) // 1000
        if exc_type is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self._recorder.record(self)
        return False

    def as_record(self) -> dict:
        record = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent,
            "name": self.name,
            "start_us": self.start_us,
            "elapsed_us": self.elapsed_us,
            "status": "ok" if self.error is None else "error",
        }
        if self.error is not None:
            record["error"] = self.error
        for key, value in self.attrs.items():
            record[key] = (value if isinstance(value, (int, float, bool))
                           else str(value))
        return record


def adopt_leaf_span(recorder: TraceRecorder, trace_id: str,
                    parent_span_id: Optional[str], name: str, **attrs):
    """:func:`adopt_span` minus the context switch, for handlers that
    provably open no child spans (see :class:`_LeafSpan`)."""
    return _LeafSpan(recorder, trace_id, parent_span_id, name, attrs)


class _TraceHandle:
    __slots__ = ("trace_id", "root")

    def __init__(self, trace_id: str, root: Optional[dict]):
        self.trace_id = trace_id
        self.root = root


@contextmanager
def start_trace(name: str, recorder: TraceRecorder,
                trace_id: Optional[str] = None, **attrs):
    """Open a new root span and make its trace active in this context.

    The client side of a distributed trace: requests issued inside the
    block are stamped with the trace, and the handle's ``trace_id`` is
    what to pass to the ``trace`` wire op afterwards.
    """
    trace_id = trace_id or new_trace_id()
    token = _STATE.set(TraceContext(trace_id, None, recorder))
    try:
        with span(name, **attrs) as root:
            yield _TraceHandle(trace_id, root)
    finally:
        _STATE.reset(token)
