"""Kronecker formulas for directed triangle participation (Theorems 4 and 5).

Setting of Section IV: the left factor ``A`` is a directed graph without self
loops, the right factor ``B`` is undirected (``B_d = O``, every ``B`` edge
reciprocal) and may carry self loops.  Then the product ``C = A ⊗ B``
decomposes as ``C_r = A_r ⊗ B`` and ``C_d = A_d ⊗ B``, and for **every** one
of the fifteen directed triangle types ``τ`` of Figs. 4-5:

.. math::

    t^{(τ)}_C = t^{(τ)}_A ⊗ \\mathrm{diag}(B^3), \\qquad
    Δ^{(τ)}_C = Δ^{(τ)}_A ⊗ (B ∘ B^2).

The functions here evaluate those products, either fully (arrays/matrices of
product size) or lazily per vertex/edge, reusing the per-type factor censuses
from :mod:`repro.triangles.directed_counts`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph, hadamard
from repro.graphs.directed import DirectedGraph
from repro.core.triangle_formulas import _edge_census_point_query, diag_of_cube
from repro.triangles.directed_counts import (
    CANONICAL_EDGE_TYPES,
    CANONICAL_VERTEX_TYPES,
    directed_edge_triangle_counts,
    directed_vertex_triangle_counts,
)

__all__ = [
    "check_directed_factor_assumptions",
    "kron_reciprocal_part",
    "kron_directed_part",
    "kron_directed_vertex_triangles",
    "kron_directed_edge_triangles",
    "kron_directed_vertex_triangles_at",
    "kron_directed_edge_triangles_at",
]


def check_directed_factor_assumptions(factor_a: DirectedGraph, factor_b: Graph) -> None:
    """Validate the hypotheses of Theorems 4-5.

    ``A`` must be a directed graph without self loops; ``B`` must be
    undirected (its adjacency symmetric).  Raises ``ValueError`` otherwise.
    """
    if not isinstance(factor_a, DirectedGraph):
        raise TypeError("factor A must be a DirectedGraph")
    if factor_a.has_self_loops:
        raise ValueError("Theorems 4-5 require diag(A) = 0")
    if isinstance(factor_b, DirectedGraph):
        if not factor_b.is_symmetric:
            raise ValueError("Theorems 4-5 require the right factor to be undirected (B_d = O)")
    elif not isinstance(factor_b, Graph):
        raise TypeError("factor B must be an undirected Graph")


def _b_adjacency(factor_b: Union[Graph, DirectedGraph]) -> sp.csr_matrix:
    return factor_b.adjacency


def kron_reciprocal_part(factor_a: DirectedGraph, factor_b: Graph) -> sp.csr_matrix:
    """``C_r = A_r ⊗ B`` — the reciprocal part of the product (Section IV.A)."""
    check_directed_factor_assumptions(factor_a, factor_b)
    return sp.kron(factor_a.reciprocal_part(), _b_adjacency(factor_b), format="csr")


def kron_directed_part(factor_a: DirectedGraph, factor_b: Graph) -> sp.csr_matrix:
    """``C_d = A_d ⊗ B`` — the directed part of the product (Section IV.A)."""
    check_directed_factor_assumptions(factor_a, factor_b)
    return sp.kron(factor_a.directed_part(), _b_adjacency(factor_b), format="csr")


def kron_directed_vertex_triangles(
    factor_a: DirectedGraph,
    factor_b: Graph,
    types: Optional[Iterable[str]] = None,
) -> Dict[str, np.ndarray]:
    """Theorem 4: ``t^(τ)_C = t^(τ)_A ⊗ diag(B³)`` for each requested type.

    Returns a dict mapping type name to the full length-``n_C`` vector.
    """
    check_directed_factor_assumptions(factor_a, factor_b)
    requested = list(types) if types is not None else list(CANONICAL_VERTEX_TYPES)
    a_counts = directed_vertex_triangle_counts(factor_a, requested)
    b_cube = diag_of_cube(_b_adjacency(factor_b))
    return {name: np.kron(vec, b_cube) for name, vec in a_counts.items()}


def kron_directed_vertex_triangles_at(
    factor_a: DirectedGraph,
    factor_b: Graph,
    p: Union[int, np.ndarray],
    types: Optional[Iterable[str]] = None,
) -> Dict[str, Union[int, np.ndarray]]:
    """Point-query version of Theorem 4 (no length-``n_C`` allocation)."""
    check_directed_factor_assumptions(factor_a, factor_b)
    requested = list(types) if types is not None else list(CANONICAL_VERTEX_TYPES)
    a_counts = directed_vertex_triangle_counts(factor_a, requested)
    b_cube = diag_of_cube(_b_adjacency(factor_b))
    n_b = factor_b.n_vertices
    i = np.asarray(p, dtype=np.int64) // n_b
    k = np.asarray(p, dtype=np.int64) % n_b
    out: Dict[str, Union[int, np.ndarray]] = {}
    for name, vec in a_counts.items():
        value = vec[i] * b_cube[k]
        out[name] = value if isinstance(p, np.ndarray) else int(value)
    return out


def kron_directed_edge_triangles_at(
    factor_a: DirectedGraph,
    factor_b: Graph,
    p: Union[int, np.ndarray],
    q: Union[int, np.ndarray],
    types: Optional[Iterable[str]] = None,
) -> Dict[str, Union[int, np.ndarray]]:
    """Batched point-query version of Theorem 5.

    For product edges ``(p[t], q[t])`` evaluates
    ``Δ^(τ)_C[p, q] = Δ^(τ)_A[i, j] · (B ∘ B²)[k, l]`` with one vectorized
    CSR gather per side — no product-sized matrix and no per-edge Python loop.
    """
    check_directed_factor_assumptions(factor_a, factor_b)
    requested = list(types) if types is not None else list(CANONICAL_EDGE_TYPES)
    a_counts = directed_edge_triangle_counts(factor_a, requested)
    adj_b = _b_adjacency(factor_b)
    b_masked = hadamard(adj_b, adj_b @ adj_b)
    return _edge_census_point_query(a_counts, b_masked, factor_b.n_vertices, p, q)


def kron_directed_edge_triangles(
    factor_a: DirectedGraph,
    factor_b: Graph,
    types: Optional[Iterable[str]] = None,
) -> Dict[str, sp.csr_matrix]:
    """Theorem 5: ``Δ^(τ)_C = Δ^(τ)_A ⊗ (B ∘ B²)`` for each requested type."""
    check_directed_factor_assumptions(factor_a, factor_b)
    requested = list(types) if types is not None else list(CANONICAL_EDGE_TYPES)
    a_counts = directed_edge_triangle_counts(factor_a, requested)
    adj_b = _b_adjacency(factor_b)
    b_masked = hadamard(adj_b, adj_b @ adj_b)
    return {name: sp.kron(mat, b_masked, format="csr") for name, mat in a_counts.items()}
