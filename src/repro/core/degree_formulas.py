"""Kronecker degree formulas (Section III.A and IV.B of the paper).

For ``C = A ⊗ B`` the degree vector factorizes through the factors:

* no self loops anywhere: ``d_C = d_A ⊗ d_B``;
* self loops in ``B`` only: ``(d_C)_p = (d_A)_{i(p)} [(d_B)_{k(p)} + 1]``
  (when every ``B`` vertex is looped; in general ``+ s_B``);
* self loops in both factors:
  ``(d_C)_p = [(d_A)_{i(p)} + s_A] [(d_B)_{k(p)} + s_B] - s_A s_B``.

All three cases collapse into the single identity

.. math::

    d_C = (d_A + s_A) ⊗ (d_B + s_B) - s_A ⊗ s_B,

where ``s_X`` is the 0/1 self-loop indicator of factor ``X`` — the row sums
of ``C`` minus its diagonal.  The directed variants (out/in/reciprocal
degrees, Section IV.B) follow the same pattern and are provided for the
``B`` undirected case the paper analyzes.

The paper also notes a qualitative consequence: the ratio of maximum degree
to vertex count *squares* under the product,
``‖d_C‖∞ / n_C = (‖d_A‖∞ / n_A)(‖d_B‖∞ / n_B)``; helpers for that ratio are
included because benchmark E3 reports it.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.graphs.adjacency import Graph
from repro.graphs.directed import DirectedGraph

__all__ = [
    "kron_degrees",
    "kron_degree_at",
    "kron_out_degrees",
    "kron_in_degrees",
    "kron_reciprocal_degrees",
    "kron_directed_out_degrees",
    "kron_directed_in_degrees",
    "max_degree_ratio",
    "kron_max_degree_ratio",
]

UndirectedFactor = Graph
AnyFactor = Union[Graph, DirectedGraph]


def _degree_and_loops(graph: Graph) -> Tuple[np.ndarray, np.ndarray]:
    return graph.degrees(), (graph.self_loop_vector() != 0).astype(np.int64)


def kron_degrees(factor_a: Graph, factor_b: Graph) -> np.ndarray:
    """Exact degree vector of ``C = A ⊗ B`` (self loops excluded from degrees).

    Implements ``d_C = (d_A + s_A) ⊗ (d_B + s_B) − s_A ⊗ s_B``, which reduces
    to the paper's special cases when either factor is loop-free.
    """
    d_a, s_a = _degree_and_loops(factor_a)
    d_b, s_b = _degree_and_loops(factor_b)
    return np.kron(d_a + s_a, d_b + s_b) - np.kron(s_a, s_b)


def kron_degree_at(factor_a: Graph, factor_b: Graph, p: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
    """Degree of product vertex/vertices ``p`` without forming the full vector.

    Batch-first: ``p`` may be a scalar or any integer array-like; arrays are
    answered with one vectorized gather over the factor-level vectors.
    """
    n_b = factor_b.n_vertices
    d_a, s_a = _degree_and_loops(factor_a)
    d_b, s_b = _degree_and_loops(factor_b)
    scalar_input = np.isscalar(p)
    p_arr = np.asarray(p, dtype=np.int64)
    i = p_arr // n_b
    k = p_arr % n_b
    out = (d_a[i] + s_a[i]) * (d_b[k] + s_b[k]) - s_a[i] * s_b[k]
    return int(out) if scalar_input else out


# ---------------------------------------------------------------------------
# Directed degrees (Section IV.B, with B undirected)
# ---------------------------------------------------------------------------
def kron_out_degrees(factor_a: DirectedGraph, factor_b: Graph) -> np.ndarray:
    """``d^out_C = d^out_A ⊗ d^out_B`` (row sums; self loops included as in the paper)."""
    out_a = factor_a.out_degrees()
    out_b = np.asarray(factor_b.adjacency.sum(axis=1)).ravel().astype(np.int64)
    return np.kron(out_a, out_b)


def kron_in_degrees(factor_a: DirectedGraph, factor_b: Graph) -> np.ndarray:
    """``d^in_C = d^in_A ⊗ d^in_B`` (column sums)."""
    in_a = factor_a.in_degrees()
    in_b = np.asarray(factor_b.adjacency.sum(axis=0)).ravel().astype(np.int64)
    return np.kron(in_a, in_b)


def kron_reciprocal_degrees(factor_a: DirectedGraph, factor_b: Graph) -> np.ndarray:
    """``d_{C_r} = d_{A_r} ⊗ d_B`` — reciprocal degrees when ``B`` is undirected."""
    rec_a = factor_a.reciprocal_degrees()
    d_b = np.asarray(factor_b.adjacency.sum(axis=1)).ravel().astype(np.int64)
    return np.kron(rec_a, d_b)


def kron_directed_out_degrees(factor_a: DirectedGraph, factor_b: Graph) -> np.ndarray:
    """``d^out_{C_d} = d^out_{A_d} ⊗ d_B`` when ``B`` is undirected."""
    d_a = factor_a.directed_out_degrees()
    d_b = np.asarray(factor_b.adjacency.sum(axis=1)).ravel().astype(np.int64)
    return np.kron(d_a, d_b)


def kron_directed_in_degrees(factor_a: DirectedGraph, factor_b: Graph) -> np.ndarray:
    """``d^in_{C_d} = d^in_{A_d} ⊗ d_B`` when ``B`` is undirected."""
    d_a = factor_a.directed_in_degrees()
    d_b = np.asarray(factor_b.adjacency.sum(axis=1)).ravel().astype(np.int64)
    return np.kron(d_a, d_b)


# ---------------------------------------------------------------------------
# Max-degree ratio (Section III.A observation)
# ---------------------------------------------------------------------------
def max_degree_ratio(graph: Graph) -> float:
    """``‖d_A‖∞ / n_A`` — maximum degree as a fraction of the vertex count."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return 0.0
    return float(degrees.max()) / graph.n_vertices


def kron_max_degree_ratio(factor_a: Graph, factor_b: Graph) -> float:
    """The product's max-degree ratio, computed from the factors.

    For loop-free factors this is exactly the product of the factor ratios —
    the "squaring" the paper highlights; with self loops it is evaluated from
    the factored degree expression without forming the full vector.
    """
    d_a, s_a = _degree_and_loops(factor_a)
    d_b, s_b = _degree_and_loops(factor_b)
    if d_a.size == 0 or d_b.size == 0:
        return 0.0

    def best_per_loop_class(d: np.ndarray, s: np.ndarray) -> list:
        """Best factor vertex among loop-free and among looped vertices."""
        candidates = []
        for loop_value in (0, 1):
            members = np.flatnonzero(s == loop_value)
            if members.size:
                best_member = members[int(np.argmax(d[members]))]
                candidates.append(int(best_member))
        return candidates

    # For a fixed self-loop class the degree expression is increasing in the
    # factor degree, so the product maximum is attained at one of the (at
    # most) 2 × 2 class-wise maximizers.
    best = 0
    for i in best_per_loop_class(d_a, s_a):
        for k in best_per_loop_class(d_b, s_b):
            val = (d_a[i] + s_a[i]) * (d_b[k] + s_b[k]) - s_a[i] * s_b[k]
            best = max(best, int(val))
    n_c = factor_a.n_vertices * factor_b.n_vertices
    return float(best) / n_c
