"""Kronecker block index maps (the paper's α, β, γ functions).

A Kronecker product ``C = A ⊗ B`` is block structured with block size
``n_B``; the paper's Preliminaries define, for a **1-based** global index
``i`` and block size ``n``:

.. math::

    \\alpha_n(i) = \\lfloor (i-1)/n \\rfloor + 1, \\qquad
    \\beta_n(i)  = ((i-1) \\bmod n) + 1, \\qquad
    \\gamma_n(x, y) = (x-1) n + y,

so that ``i = γ_n(α_n(i), β_n(i))`` and
``C_{γ(i,k), γ(j,l)} = A_{ij} B_{kl}``.

The library itself is 0-based: a product vertex ``p`` decomposes as
``p = i * n_B + k`` with ``i = p // n_B`` (the *A-side* index) and
``k = p % n_B`` (the *B-side* index).  Both conventions are provided, all
functions are vectorized over NumPy arrays, and round-trip identities are
covered by property-based tests.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

__all__ = [
    "alpha",
    "beta",
    "gamma",
    "factor_indices",
    "product_index",
    "alpha_1based",
    "beta_1based",
    "gamma_1based",
]

IntOrArray = Union[int, np.ndarray]


def _validate_block(n: int) -> None:
    if n < 1:
        raise ValueError("block size must be a positive integer")


# ---------------------------------------------------------------------------
# 0-based maps (library convention)
# ---------------------------------------------------------------------------
def alpha(index: IntOrArray, block_size: int) -> IntOrArray:
    """Block number of a 0-based global index: ``index // block_size``."""
    _validate_block(block_size)
    return np.asarray(index, dtype=np.int64) // block_size if isinstance(index, np.ndarray) \
        else int(index) // block_size


def beta(index: IntOrArray, block_size: int) -> IntOrArray:
    """Intra-block offset of a 0-based global index: ``index % block_size``."""
    _validate_block(block_size)
    return np.asarray(index, dtype=np.int64) % block_size if isinstance(index, np.ndarray) \
        else int(index) % block_size


def gamma(block: IntOrArray, offset: IntOrArray, block_size: int) -> IntOrArray:
    """Global 0-based index of (block, offset): ``block * block_size + offset``."""
    _validate_block(block_size)
    if isinstance(block, np.ndarray) or isinstance(offset, np.ndarray):
        return np.asarray(block, dtype=np.int64) * block_size + np.asarray(offset, dtype=np.int64)
    return int(block) * block_size + int(offset)


def factor_indices(p: IntOrArray, n_b: int) -> Tuple[IntOrArray, IntOrArray]:
    """Split a product-vertex id into its ``(A-side, B-side)`` factor indices.

    For ``C = A ⊗ B`` with ``n_B = |V_B|``, product vertex ``p`` corresponds
    to vertex ``i = p // n_B`` of ``A`` and ``k = p % n_B`` of ``B``.
    """
    return alpha(p, n_b), beta(p, n_b)


def product_index(i: IntOrArray, k: IntOrArray, n_b: int) -> IntOrArray:
    """Product-vertex id of factor pair ``(i, k)``: ``i * n_B + k``."""
    return gamma(i, k, n_b)


# ---------------------------------------------------------------------------
# 1-based maps (paper notation, for direct comparison with the text)
# ---------------------------------------------------------------------------
def alpha_1based(index: IntOrArray, block_size: int) -> IntOrArray:
    """The paper's ``α_n(i) = ⌊(i-1)/n⌋ + 1`` for 1-based ``i``."""
    _validate_block(block_size)
    arr = np.asarray(index, dtype=np.int64)
    out = (arr - 1) // block_size + 1
    return out if isinstance(index, np.ndarray) else int(out)


def beta_1based(index: IntOrArray, block_size: int) -> IntOrArray:
    """The paper's ``β_n(i) = ((i-1) mod n) + 1`` for 1-based ``i``."""
    _validate_block(block_size)
    arr = np.asarray(index, dtype=np.int64)
    out = (arr - 1) % block_size + 1
    return out if isinstance(index, np.ndarray) else int(out)


def gamma_1based(x: IntOrArray, y: IntOrArray, block_size: int) -> IntOrArray:
    """The paper's ``γ_n(x, y) = (x-1) n + y`` for 1-based ``x, y``."""
    _validate_block(block_size)
    xa = np.asarray(x, dtype=np.int64)
    ya = np.asarray(y, dtype=np.int64)
    out = (xa - 1) * block_size + ya
    return out if (isinstance(x, np.ndarray) or isinstance(y, np.ndarray)) else int(out)
