"""Multi-factor Kronecker products ``C = A₁ ⊗ A₂ ⊗ … ⊗ A_k``.

The large-scale generator the paper builds on ([3], Kepner et al.) composes
*many* small factors, not just two: a product of ``k`` factors with a few
thousand vertices each reaches arbitrarily large scales while staying
representable by the factor list.  Because the Kronecker product is
associative, every two-factor formula in this library extends by folding:

* degrees (loop-free): ``d_C = d_{A₁} ⊗ … ⊗ d_{A_k}``;
* vertex triangles (loop-free): ``t_C = 2^{k-1} · t_{A₁} ⊗ … ⊗ t_{A_k}``;
* edge triangles (loop-free): ``Δ_C = Δ_{A₁} ⊗ … ⊗ Δ_{A_k}``;
* global count (loop-free): ``τ(C) = 6^{k-1} · τ(A₁) ⋯ τ(A_k)``;
* with self loops anywhere, the general two-factor expansions are applied
  pairwise by left-folding the factor list (the intermediate factor is the
  materialized product of the factors folded so far, so this is intended for
  factor lists whose *prefix products* stay small — the usual regime, where
  each factor has at most a few thousand vertices and the final blow-up
  happens on the last fold).

:class:`MultiKroneckerGraph` provides the same implicit-product interface as
:class:`repro.core.KroneckerGraph` (index maps, degrees, neighbours, edge
membership, subgraphs/egonets, streaming, guarded materialization) for an
arbitrary number of factors.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterator, List, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph, hadamard, to_csr
from repro.perf.kernels import csr_has_entry
from repro.triangles.linear_algebra import edge_triangles, total_triangles, vertex_triangles

__all__ = [
    "MultiKroneckerGraph",
    "multi_kron_degrees",
    "multi_kron_vertex_triangles",
    "multi_kron_edge_triangles",
    "multi_kron_triangle_count",
]

#: Refuse to materialize products with more stored entries than this by default.
DEFAULT_MATERIALIZE_LIMIT = 50_000_000


def _check_factors(factors: Sequence[Graph]) -> List[Graph]:
    factors = list(factors)
    if len(factors) < 2:
        raise ValueError("a multi-factor product needs at least two factors")
    for idx, factor in enumerate(factors):
        if not isinstance(factor, Graph):
            raise TypeError(f"factor {idx} must be an undirected Graph, got {type(factor)!r}")
    return factors


def _all_loop_free(factors: Sequence[Graph]) -> bool:
    return not any(f.has_self_loops for f in factors)


def multi_kron_degrees(factors: Sequence[Graph]) -> np.ndarray:
    """Exact degree vector of the multi-factor product.

    Loop-free factors use the pure Kronecker product of degree vectors; with
    self loops the two-factor formula is folded left to right.
    """
    factors = _check_factors(factors)
    if _all_loop_free(factors):
        return reduce(np.kron, (f.degrees() for f in factors))
    from repro.core.degree_formulas import kron_degrees

    current = factors[0]
    for nxt in factors[1:-1]:
        current = Graph(sp.kron(current.adjacency, nxt.adjacency, format="csr"), validate=False)
    return kron_degrees(current, factors[-1])


def multi_kron_vertex_triangles(factors: Sequence[Graph]) -> np.ndarray:
    """Exact per-vertex triangle participation of the multi-factor product."""
    factors = _check_factors(factors)
    if _all_loop_free(factors):
        folded = reduce(np.kron, (vertex_triangles(f) for f in factors))
        return (2 ** (len(factors) - 1)) * folded
    from repro.core.triangle_formulas import kron_vertex_triangles

    current = factors[0]
    for nxt in factors[1:-1]:
        current = Graph(sp.kron(current.adjacency, nxt.adjacency, format="csr"), validate=False)
    return kron_vertex_triangles(current, factors[-1])


def multi_kron_edge_triangles(factors: Sequence[Graph]) -> sp.csr_matrix:
    """Exact per-edge triangle participation of the multi-factor product."""
    factors = _check_factors(factors)
    if _all_loop_free(factors):
        mats = [edge_triangles(f) for f in factors]
        return reduce(lambda x, y: sp.kron(x, y, format="csr"), mats)
    from repro.core.triangle_formulas import kron_edge_triangles

    current = factors[0]
    for nxt in factors[1:-1]:
        current = Graph(sp.kron(current.adjacency, nxt.adjacency, format="csr"), validate=False)
    return kron_edge_triangles(current, factors[-1])


def multi_kron_triangle_count(factors: Sequence[Graph]) -> int:
    """Exact global triangle count of the multi-factor product.

    Loop-free: ``τ = 6^{k-1} Π τ(A_i)`` — pure factor-level arithmetic.  With
    self loops the vertex formula is folded and summed.
    """
    factors = _check_factors(factors)
    if _all_loop_free(factors):
        total = 6 ** (len(factors) - 1)
        for factor in factors:
            total *= total_triangles(factor)
        return int(total)
    return int(multi_kron_vertex_triangles(factors).sum()) // 3


class MultiKroneckerGraph:
    """Implicit Kronecker product of an arbitrary list of undirected factors.

    Vertex ``p`` of the product decomposes into mixed-radix digits
    ``(i₁, …, i_k)`` with radices ``(n₁, …, n_k)`` (most-significant digit
    first, consistent with the two-factor convention ``p = i·n_B + k``), and
    ``C[p, q] = Π_m A_m[i_m, j_m]``.
    """

    __slots__ = ("factors", "_adjacencies", "name")

    def __init__(self, factors: Sequence[Graph], *, name: str = ""):
        self.factors = _check_factors(factors)
        self._adjacencies = [to_csr(f.adjacency) for f in self.factors]
        if not name:
            name = "⊗".join(f.name or f"A{i + 1}" for i, f in enumerate(self.factors))
        self.name = name

    # ------------------------------------------------------------------
    @property
    def n_factors(self) -> int:
        """Number of factors ``k``."""
        return len(self.factors)

    @property
    def factor_sizes(self) -> Tuple[int, ...]:
        """Vertex counts of the factors ``(n₁, …, n_k)``."""
        return tuple(f.n_vertices for f in self.factors)

    @property
    def n_vertices(self) -> int:
        """``Π n_m``."""
        out = 1
        for n in self.factor_sizes:
            out *= n
        return out

    @property
    def nnz(self) -> int:
        """``Π nnz(A_m)`` — stored entries of the product."""
        out = 1
        for adj in self._adjacencies:
            out *= adj.nnz
        return out

    @property
    def n_self_loops(self) -> int:
        """Self loops of the product (one per all-looped factor-vertex tuple)."""
        out = 1
        for adj in self._adjacencies:
            out *= int(np.count_nonzero(adj.diagonal()))
        return out

    @property
    def has_self_loops(self) -> bool:
        """Whether the product has any self loop (needs loops in *every* factor)."""
        return self.n_self_loops > 0

    @property
    def n_edges(self) -> int:
        """Undirected edge count (unordered pairs, self loops counted once)."""
        loops = self.n_self_loops
        return (self.nnz - loops) // 2 + loops

    # ------------------------------------------------------------------
    # Index maps (mixed radix, most significant factor first)
    # ------------------------------------------------------------------
    def factor_indices(self, p: Union[int, np.ndarray]) -> Tuple[np.ndarray, ...]:
        """Split product vertex id(s) into one index array per factor."""
        sizes = self.factor_sizes
        remaining = np.asarray(p, dtype=np.int64)
        digits: List[np.ndarray] = []
        for size in reversed(sizes):
            digits.append(remaining % size)
            remaining = remaining // size
        return tuple(reversed(digits))

    def product_index(self, indices: Sequence[Union[int, np.ndarray]]) -> Union[int, np.ndarray]:
        """Combine one index per factor into the product vertex id."""
        if len(indices) != self.n_factors:
            raise ValueError(f"expected {self.n_factors} indices, got {len(indices)}")
        out = np.asarray(indices[0], dtype=np.int64)
        for size, idx in zip(self.factor_sizes[1:], indices[1:]):
            out = out * size + np.asarray(idx, dtype=np.int64)
        return out if isinstance(out, np.ndarray) and out.ndim else int(out)

    # ------------------------------------------------------------------
    # Local queries
    # ------------------------------------------------------------------
    def has_edge(self, p: int, q: int) -> bool:
        """Whether ``C[p, q] = Π_m A_m[i_m, j_m]`` is non-zero."""
        p_idx = self.factor_indices(int(p))
        q_idx = self.factor_indices(int(q))
        return all(
            csr_has_entry(adj, int(i), int(j))
            for adj, i, j in zip(self._adjacencies, p_idx, q_idx)
        )

    def degree(self, p: int) -> int:
        """Degree of product vertex ``p`` (self loop excluded)."""
        indices = self.factor_indices(int(p))
        row_product = 1
        loop_product = 1
        for adj, i in zip(self._adjacencies, indices):
            i = int(i)
            row_product *= int(adj.indptr[i + 1] - adj.indptr[i])
            loop_product *= int(csr_has_entry(adj, i, i))
        return row_product - loop_product

    def degrees(self) -> np.ndarray:
        """Full degree vector (length ``Π n_m``)."""
        return multi_kron_degrees(self.factors)

    def neighbors(self, p: int, *, include_self_loop: bool = False) -> np.ndarray:
        """Sorted neighbour ids of product vertex ``p``."""
        indices = self.factor_indices(int(p))
        per_factor: List[np.ndarray] = []
        for adj, i in zip(self._adjacencies, indices):
            i = int(i)
            per_factor.append(adj.indices[adj.indptr[i]:adj.indptr[i + 1]].astype(np.int64))
        if any(nbrs.size == 0 for nbrs in per_factor):
            return np.zeros(0, dtype=np.int64)
        combined = per_factor[0]
        for size, nbrs in zip(self.factor_sizes[1:], per_factor[1:]):
            combined = (combined[:, None] * size + nbrs[None, :]).ravel()
        combined.sort()
        if not include_self_loop:
            combined = combined[combined != p]
        return combined

    def subgraph_adjacency(self, vertices: Sequence[int]) -> sp.csr_matrix:
        """Induced adjacency on *vertices* without materializing the product."""
        ps = np.asarray(vertices, dtype=np.int64)
        if ps.size and (ps.min() < 0 or ps.max() >= self.n_vertices):
            raise IndexError("product vertex id out of range")
        digit_arrays = self.factor_indices(ps)
        result = None
        for adj, digits in zip(self._adjacencies, digit_arrays):
            block = adj[digits][:, digits]
            result = block if result is None else hadamard(result, block)
        return sp.csr_matrix(result)

    def subgraph(self, vertices: Sequence[int]) -> Graph:
        """Induced subgraph as a :class:`Graph` (used by egonet extraction)."""
        return Graph(self.subgraph_adjacency(vertices), name=f"{self.name}[sub]", validate=False)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def vertex_triangles(self) -> np.ndarray:
        """Exact per-vertex triangle participation (folded formulas)."""
        return multi_kron_vertex_triangles(self.factors)

    def edge_triangles(self) -> sp.csr_matrix:
        """Exact per-edge triangle participation (folded formulas)."""
        return multi_kron_edge_triangles(self.factors)

    def triangle_count(self) -> int:
        """Exact global triangle count."""
        return multi_kron_triangle_count(self.factors)

    # ------------------------------------------------------------------
    # Materialization / streaming
    # ------------------------------------------------------------------
    def materialize_adjacency(self, *, max_nnz: int = DEFAULT_MATERIALIZE_LIMIT) -> sp.csr_matrix:
        """Materialize the full adjacency (guarded by ``max_nnz``)."""
        if self.nnz > max_nnz:
            raise MemoryError(
                f"product has {self.nnz} stored entries, above the limit {max_nnz}"
            )
        out = self._adjacencies[0]
        for adj in self._adjacencies[1:]:
            out = sp.kron(out, adj, format="csr")
        return sp.csr_matrix(out).astype(np.int64)

    def materialize(self, *, max_nnz: int = DEFAULT_MATERIALIZE_LIMIT) -> Graph:
        """Materialize as a :class:`Graph`."""
        return Graph(self.materialize_adjacency(max_nnz=max_nnz), name=self.name, validate=False)

    def iter_edge_blocks(self, *, first_factor_edges_per_block: int = 256) -> Iterator[np.ndarray]:
        """Stream the directed edge list in blocks keyed by first-factor entries.

        The remaining factors' edge lists are expanded per block; peak memory
        is ``O(block · Π_{m>1} nnz(A_m))``.
        """
        coo_first = self._adjacencies[0].tocoo()
        # Pre-expand the tail product's edge list (assumed small relative to the head).
        tail_rows = np.zeros(1, dtype=np.int64)
        tail_cols = np.zeros(1, dtype=np.int64)
        for adj, size in zip(self._adjacencies[1:], self.factor_sizes[1:]):
            coo = adj.tocoo()
            tail_rows = (tail_rows[:, None] * size + coo.row[None, :].astype(np.int64)).ravel()
            tail_cols = (tail_cols[:, None] * size + coo.col[None, :].astype(np.int64)).ravel()
        tail_size = 1
        for size in self.factor_sizes[1:]:
            tail_size *= size
        for start in range(0, coo_first.nnz, first_factor_edges_per_block):
            stop = min(start + first_factor_edges_per_block, coo_first.nnz)
            head_rows = coo_first.row[start:stop].astype(np.int64)
            head_cols = coo_first.col[start:stop].astype(np.int64)
            rows = (head_rows[:, None] * tail_size + tail_rows[None, :]).ravel()
            cols = (head_cols[:, None] * tail_size + tail_cols[None, :]).ravel()
            yield np.stack([rows, cols], axis=1)

    def __repr__(self) -> str:
        return (
            f"MultiKroneckerGraph({self.name!r}, k={self.n_factors}, "
            f"n_vertices={self.n_vertices}, nnz={self.nnz})"
        )
