"""Kronecker formulas for undirected triangle participation (Thms. 1-2, Cors. 1-2).

These are the paper's headline results: for ``C = A ⊗ B`` with undirected
factors, the triangle participation at every vertex and at every edge of the
(possibly trillion-edge) product is an explicit Kronecker combination of
small per-factor quantities:

=============================  =====================================================
Self-loop situation            Formula
=============================  =====================================================
neither factor has loops       ``t_C = 2 t_A ⊗ t_B``,  ``Δ_C = Δ_A ⊗ Δ_B``
loops in ``B`` only            ``t_C = t_A ⊗ diag(B³)``, ``Δ_C = Δ_A ⊗ (B ∘ B²)``
loops in ``A`` only            ``t_C = diag(A³) ⊗ t_B``, ``Δ_C = (A ∘ A²) ⊗ Δ_B``
loops in both factors          the general expansions of Section III.B/III.C
=============================  =====================================================

The general expansions (which reduce to all special cases) are

.. math::

    t_C = \\tfrac12\\bigl[\\mathrm{diag}(A^3)\\otimes\\mathrm{diag}(B^3)
        - 2\\,\\mathrm{diag}(A^2 D_A)\\otimes\\mathrm{diag}(B^2 D_B)
        - \\mathrm{diag}(A D_A A)\\otimes\\mathrm{diag}(B D_B B)
        + 2\\,\\mathrm{diag}(D_A)\\otimes\\mathrm{diag}(D_B)\\bigr],

    Δ_C = (A∘A^2)\\otimes(B∘B^2) - (D_A A)\\otimes(D_B B) - (A D_A)\\otimes(B D_B)
        + 2 D_A\\otimes D_B - (D_A∘A^2)\\otimes(D_B∘B^2),

with ``D_X = I ∘ X`` the self-loop diagonal of factor ``X``.

Besides the dense/sparse "full product" evaluators, the module exposes a lazy
:class:`KroneckerTriangleStats` object that stores only per-factor component
vectors/matrices and answers point queries, totals and histograms without
ever allocating length-``n_C`` arrays — this is the object a distributed
generator would ship alongside the compressed graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.index_maps import factor_indices
from repro.graphs.adjacency import Graph, hadamard
from repro.perf.kernels import CsrGatherer, csr_gather
from repro.triangles.linear_algebra import edge_triangles, vertex_triangles

__all__ = [
    "diag_of_cube",
    "self_loop_case",
    "thm1_vertex_triangles",
    "cor1_vertex_triangles",
    "thm2_edge_triangles",
    "cor2_edge_triangles",
    "kron_vertex_triangles",
    "kron_edge_triangles",
    "kron_triangle_count",
    "kron_vertex_triangles_at",
    "kron_edge_triangles_at",
    "KroneckerTriangleStats",
    "TriangleStatsGatherer",
]


# ---------------------------------------------------------------------------
# Per-factor ingredient vectors / matrices
# ---------------------------------------------------------------------------
def diag_of_cube(graph: Union[Graph, sp.spmatrix]) -> np.ndarray:
    """``diag(A³)`` as a dense vector, without forming ``A³``.

    Uses ``diag(A³) = (A ∘ (A²)ᵗ) 1`` which needs a single sparse product.
    Self loops are **kept** — this is the raw quantity appearing in
    Corollary 1 and Theorems 4/6.
    """
    adj = graph.adjacency if isinstance(graph, Graph) else sp.csr_matrix(graph)
    squared = (adj @ adj).T.tocsr()
    masked = hadamard(adj, squared)
    return np.asarray(masked.sum(axis=1)).ravel().astype(np.int64)


def _loop_matrix(adj: sp.csr_matrix) -> sp.csr_matrix:
    """``D_A = I ∘ A`` — the diagonal matrix of self loops."""
    return sp.diags(adj.diagonal(), format="csr", dtype=np.int64)


def _vertex_components(factor_a: Graph, factor_b: Graph) -> List[Tuple[float, np.ndarray, np.ndarray]]:
    """Per-factor components ``(coef, x_A, x_B)`` with ``t_C = Σ coef · x_A ⊗ x_B``."""
    comps: List[Tuple[float, np.ndarray, np.ndarray]] = []
    per_factor = []
    for factor in (factor_a, factor_b):
        adj = factor.adjacency
        loops = (adj.diagonal() != 0).astype(np.int64)
        diag_cube = diag_of_cube(factor)
        # diag(A² D_A)_i = (A²)_ii · s_i ; (A²)_ii = Σ_j A_ij A_ji = (A ∘ Aᵗ) 1.
        diag_sq = np.asarray(hadamard(adj, adj.T).sum(axis=1)).ravel().astype(np.int64)
        diag_sq_loop = diag_sq * loops
        # diag(A D_A A)_i = Σ_j A_ij s_j A_ji = ((A ∘ Aᵗ) s)_i.
        diag_mid_loop = np.asarray(hadamard(adj, adj.T) @ loops).ravel().astype(np.int64)
        per_factor.append((diag_cube, diag_sq_loop, diag_mid_loop, loops))
    (a3, a2d, adxa, sa), (b3, b2d, bdxb, sb) = per_factor
    comps.append((0.5, a3, b3))
    comps.append((-1.0, a2d, b2d))
    comps.append((-0.5, adxa, bdxb))
    comps.append((1.0, sa.astype(np.int64), sb.astype(np.int64)))
    return comps


def _edge_components(factor_a: Graph, factor_b: Graph) -> List[Tuple[float, sp.csr_matrix, sp.csr_matrix]]:
    """Per-factor components ``(coef, M_A, M_B)`` with ``Δ_C = Σ coef · M_A ⊗ M_B``."""
    comps: List[Tuple[float, sp.csr_matrix, sp.csr_matrix]] = []
    per_factor = []
    for factor in (factor_a, factor_b):
        adj = factor.adjacency
        loop_mat = _loop_matrix(adj)
        squared = (adj @ adj).tocsr()
        masked = hadamard(adj, squared)          # A ∘ A²
        loop_rows = (loop_mat @ adj).tocsr()     # D_A A
        loop_cols = (adj @ loop_mat).tocsr()     # A D_A
        loop_masked = hadamard(loop_mat, squared)  # D_A ∘ A²
        components = (masked, loop_rows, loop_cols, loop_mat, loop_masked)
        for mat in components:
            # Canonicalize once here so the batched point-query gathers on
            # these (long-lived, shared) matrices never have to copy.
            mat.sum_duplicates()
        per_factor.append(components)
    a, b = per_factor
    comps.append((1.0, a[0], b[0]))
    comps.append((-1.0, a[1], b[1]))
    comps.append((-1.0, a[2], b[2]))
    comps.append((2.0, a[3], b[3]))
    comps.append((-1.0, a[4], b[4]))
    return comps


def self_loop_case(factor_a: Graph, factor_b: Graph) -> str:
    """Classify the factor pair: ``"none"``, ``"b_only"``, ``"a_only"``, or ``"both"``."""
    a_loops = factor_a.has_self_loops
    b_loops = factor_b.has_self_loops
    if not a_loops and not b_loops:
        return "none"
    if not a_loops and b_loops:
        return "b_only"
    if a_loops and not b_loops:
        return "a_only"
    return "both"


def _edge_census_point_query(a_counts, b_masked: sp.csr_matrix, n_b: int, p, q):
    """Shared batched kernel for the per-type edge censuses (Thms. 5 and 7).

    Evaluates ``Δ^(τ)_C[p, q] = Δ^(τ)_A[i, j] · (B ∘ B²)[k, l]`` for every
    type in *a_counts* with one vectorized CSR gather per side; used by the
    directed and labeled ``kron_*_edge_triangles_at`` front-ends.
    """
    scalar_input = np.isscalar(p) and np.isscalar(q)
    i, k = factor_indices(np.asarray(p, dtype=np.int64), n_b)
    j, l = factor_indices(np.asarray(q, dtype=np.int64), n_b)
    b_vals = np.asarray(csr_gather(b_masked, k, l), dtype=np.int64)
    out = {}
    for key, mat in a_counts.items():
        value = np.asarray(csr_gather(mat, i, j), dtype=np.int64) * b_vals
        out[key] = int(value) if scalar_input else value
    return out


def _require_undirected(factor_a: Graph, factor_b: Graph) -> None:
    for name, factor in (("A", factor_a), ("B", factor_b)):
        if not isinstance(factor, Graph):
            raise TypeError(f"factor {name} must be an undirected Graph, got {type(factor)!r}")


# ---------------------------------------------------------------------------
# Named theorem/corollary evaluators (with precondition checks)
# ---------------------------------------------------------------------------
def thm1_vertex_triangles(factor_a: Graph, factor_b: Graph) -> np.ndarray:
    """Theorem 1: ``t_C = 2 t_A ⊗ t_B`` (both factors loop-free)."""
    _require_undirected(factor_a, factor_b)
    if factor_a.has_self_loops or factor_b.has_self_loops:
        raise ValueError("Theorem 1 requires both factors to have no self loops")
    return 2 * np.kron(vertex_triangles(factor_a), vertex_triangles(factor_b))


def cor1_vertex_triangles(factor_a: Graph, factor_b: Graph) -> np.ndarray:
    """Corollary 1: ``t_C = t_A ⊗ diag(B³)`` (loops allowed in ``B`` only)."""
    _require_undirected(factor_a, factor_b)
    if factor_a.has_self_loops:
        raise ValueError("Corollary 1 requires the left factor to have no self loops")
    return np.kron(vertex_triangles(factor_a), diag_of_cube(factor_b))


def thm2_edge_triangles(factor_a: Graph, factor_b: Graph) -> sp.csr_matrix:
    """Theorem 2: ``Δ_C = Δ_A ⊗ Δ_B`` (both factors loop-free)."""
    _require_undirected(factor_a, factor_b)
    if factor_a.has_self_loops or factor_b.has_self_loops:
        raise ValueError("Theorem 2 requires both factors to have no self loops")
    return sp.kron(edge_triangles(factor_a), edge_triangles(factor_b), format="csr")


def cor2_edge_triangles(factor_a: Graph, factor_b: Graph) -> sp.csr_matrix:
    """Corollary 2: ``Δ_C = Δ_A ⊗ (B ∘ B²)`` (loops allowed in ``B`` only)."""
    _require_undirected(factor_a, factor_b)
    if factor_a.has_self_loops:
        raise ValueError("Corollary 2 requires the left factor to have no self loops")
    adj_b = factor_b.adjacency
    b_masked = hadamard(adj_b, adj_b @ adj_b)
    return sp.kron(edge_triangles(factor_a), b_masked, format="csr")


# ---------------------------------------------------------------------------
# General evaluators (valid for every self-loop case)
# ---------------------------------------------------------------------------
def kron_vertex_triangles(factor_a: Graph, factor_b: Graph) -> np.ndarray:
    """Exact ``t_C`` for any combination of self loops in the undirected factors.

    Evaluates the general Section III.B expansion; for loop-free factors it
    equals Theorem 1, with loops only in ``B`` it equals Corollary 1, etc.
    The result has length ``n_A · n_B``.
    """
    _require_undirected(factor_a, factor_b)
    comps = _vertex_components(factor_a, factor_b)
    n_c = factor_a.n_vertices * factor_b.n_vertices
    total = np.zeros(n_c, dtype=np.float64)
    for coef, xa, xb in comps:
        total += coef * np.kron(xa, xb).astype(np.float64)
    out = np.rint(total).astype(np.int64)
    return out


def kron_edge_triangles(factor_a: Graph, factor_b: Graph) -> sp.csr_matrix:
    """Exact ``Δ_C`` for any combination of self loops in the undirected factors."""
    _require_undirected(factor_a, factor_b)
    comps = _edge_components(factor_a, factor_b)
    n_c = factor_a.n_vertices * factor_b.n_vertices
    total = sp.csr_matrix((n_c, n_c), dtype=np.float64)
    for coef, ma, mb in comps:
        total = total + coef * sp.kron(ma, mb, format="csr").astype(np.float64)
    total = sp.csr_matrix(total)
    total.eliminate_zeros()
    out = total.astype(np.int64)
    out.eliminate_zeros()
    out.sort_indices()
    return out


def kron_triangle_count(factor_a: Graph, factor_b: Graph) -> int:
    """Exact ``τ(C)`` from per-factor sums only (no length-``n_C`` allocation).

    Uses ``Σ (x ⊗ y) = (Σ x)(Σ y)`` on the vertex components and
    ``τ = (1/3) Σ_p t_C[p]``; for loop-free factors this reduces to the
    paper's ``τ(C) = 6 τ(A) τ(B)``.
    """
    _require_undirected(factor_a, factor_b)
    comps = _vertex_components(factor_a, factor_b)
    total = 0.0
    for coef, xa, xb in comps:
        total += coef * float(xa.sum()) * float(xb.sum())
    total_int = int(round(total))
    if total_int % 3 != 0:  # pragma: no cover - formula always yields 3τ
        raise ArithmeticError("Kronecker vertex triangle sum is not a multiple of 3")
    return total_int // 3


def kron_vertex_triangles_at(
    factor_a: Graph, factor_b: Graph, p: Union[int, np.ndarray]
) -> Union[int, np.ndarray]:
    """Triangle participation of selected product vertices without full vectors."""
    stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
    return stats.vertex_value(p)


def kron_edge_triangles_at(
    factor_a: Graph,
    factor_b: Graph,
    p: Union[int, np.ndarray],
    q: Union[int, np.ndarray],
) -> Union[int, np.ndarray]:
    """Triangle participation of one or many product edges ``(p, q)``."""
    stats = KroneckerTriangleStats.from_factors(factor_a, factor_b)
    if np.isscalar(p) and np.isscalar(q):
        return stats.edge_value(int(p), int(q))
    return stats.edge_values(p, q)


# ---------------------------------------------------------------------------
# Lazy statistics object
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KroneckerTriangleStats:
    """Ground-truth triangle statistics of ``C = A ⊗ B`` in factored form.

    Stores only per-factor component vectors/matrices (size ``O(n_A + n_B)``
    and ``O(nnz_A + nnz_B)``), yet can answer point queries, global totals,
    and value histograms for the full product — the "validation payload" a
    large-scale generator would publish next to the compressed graph.
    """

    n_factor_b: int
    vertex_components: Tuple[Tuple[float, np.ndarray, np.ndarray], ...]
    edge_components: Tuple[Tuple[float, sp.csr_matrix, sp.csr_matrix], ...]

    @classmethod
    def from_factors(cls, factor_a: Graph, factor_b: Graph) -> "KroneckerTriangleStats":
        """Build the factored statistics from two undirected factors."""
        _require_undirected(factor_a, factor_b)
        return cls(
            n_factor_b=factor_b.n_vertices,
            vertex_components=tuple(_vertex_components(factor_a, factor_b)),
            edge_components=tuple(_edge_components(factor_a, factor_b)),
        )

    # -- vertex side ----------------------------------------------------
    def vertex_value(self, p: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
        """``t_C[p]`` for a scalar or array of product vertex ids."""
        i = np.asarray(p, dtype=np.int64) // self.n_factor_b
        k = np.asarray(p, dtype=np.int64) % self.n_factor_b
        total = np.zeros(np.shape(i), dtype=np.float64)
        for coef, xa, xb in self.vertex_components:
            total = total + coef * xa[i].astype(np.float64) * xb[k].astype(np.float64)
        out = np.rint(total).astype(np.int64)
        return out if isinstance(p, np.ndarray) else int(out)

    def vertex_array(self) -> np.ndarray:
        """The full ``t_C`` vector (length ``n_A · n_B``); allocate with care."""
        n_a = self.vertex_components[0][1].shape[0]
        total = np.zeros(n_a * self.n_factor_b, dtype=np.float64)
        for coef, xa, xb in self.vertex_components:
            total += coef * np.kron(xa, xb).astype(np.float64)
        return np.rint(total).astype(np.int64)

    def total_triangles(self) -> int:
        """``τ(C)`` from component sums only."""
        total = 0.0
        for coef, xa, xb in self.vertex_components:
            total += coef * float(xa.sum()) * float(xb.sum())
        return int(round(total)) // 3

    def vertex_histogram(self) -> Dict[int, int]:
        """Histogram ``{triangle count: number of product vertices}``.

        Computed by convolving factor-value histograms: product vertices are
        all pairs ``(i, k)``, so the joint distribution of the component
        values is the outer product of per-factor tabulations.  The number of
        distinct component-value combinations is bounded by the product of
        the factor-level distinct counts, which stays tiny for real factors.
        """
        # Tabulate distinct per-factor component-value tuples with multiplicity,
        # then combine every (A-tuple, B-tuple) pair in one outer product and
        # tabulate the resulting values with np.unique — no Python double loop.
        a_cols = np.stack([xa for _, xa, _ in self.vertex_components], axis=1)
        b_cols = np.stack([xb for _, _, xb in self.vertex_components], axis=1)
        coefs = np.asarray([c for c, _, _ in self.vertex_components], dtype=np.float64)
        a_unique, a_counts = np.unique(a_cols, axis=0, return_counts=True)
        b_unique, b_counts = np.unique(b_cols, axis=0, return_counts=True)
        values = np.rint(
            np.einsum("c,rc,sc->rs", coefs,
                      a_unique.astype(np.float64), b_unique.astype(np.float64))
        ).astype(np.int64)
        multiplicities = np.multiply.outer(a_counts.astype(np.int64), b_counts.astype(np.int64))
        uniq, inverse = np.unique(values.ravel(), return_inverse=True)
        sums = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(sums, inverse, multiplicities.ravel())
        return {int(v): int(c) for v, c in zip(uniq, sums)}

    # -- edge side --------------------------------------------------------
    def edge_value(self, p: int, q: int) -> int:
        """``Δ_C[p, q]`` for a single product edge.

        Scalar reference implementation; batches should always go through
        :meth:`edge_values`, which evaluates the same components with
        vectorized CSR gathers.
        """
        i, k = int(p) // self.n_factor_b, int(p) % self.n_factor_b
        j, l = int(q) // self.n_factor_b, int(q) % self.n_factor_b
        total = 0.0
        for coef, ma, mb in self.edge_components:
            total += coef * float(csr_gather(ma, i, j)) * float(csr_gather(mb, k, l))
        return int(round(total))

    def edge_values(self, ps: np.ndarray, qs: np.ndarray) -> np.ndarray:
        """``Δ_C[ps[t], qs[t]]`` for a whole batch of product edges at once.

        The vectorized sibling of :meth:`edge_value`: every component pair is
        evaluated with one :func:`~repro.perf.kernels.csr_gather` per factor —
        a simultaneous binary search over the factor CSR arrays — so the cost
        is ``O(batch · log nnz_factor)`` with no per-edge Python loop.  This
        is the kernel behind ``generate_rank_edges(..., with_statistics=True)``.
        """
        ps = np.asarray(ps, dtype=np.int64)
        qs = np.asarray(qs, dtype=np.int64)
        i, k = factor_indices(ps, self.n_factor_b)
        j, l = factor_indices(qs, self.n_factor_b)
        total = np.zeros(np.broadcast_shapes(ps.shape, qs.shape), dtype=np.float64)
        for coef, ma, mb in self.edge_components:
            a_vals = np.asarray(csr_gather(ma, i, j), dtype=np.float64)
            b_vals = np.asarray(csr_gather(mb, k, l), dtype=np.float64)
            total += coef * a_vals * b_vals
        return np.rint(total).astype(np.int64)

    def gatherer(self) -> "TriangleStatsGatherer":
        """A :class:`TriangleStatsGatherer` bound to these statistics.

        Build one per streaming pass and reuse it for every block: it
        amortizes the ``O(nnz)`` key setup of the
        :class:`~repro.perf.kernels.CsrGatherer` kernels across all gathers.
        """
        return TriangleStatsGatherer(self)

    def edge_matrix(self) -> sp.csr_matrix:
        """The full ``Δ_C`` matrix; allocate with care (``nnz ≈ nnz_A · nnz_B``)."""
        total = None
        for coef, ma, mb in self.edge_components:
            term = coef * sp.kron(ma, mb, format="csr").astype(np.float64)
            total = term if total is None else total + term
        out = sp.csr_matrix(total)
        out.eliminate_zeros()
        out = out.astype(np.int64)
        out.eliminate_zeros()
        out.sort_indices()
        return out

    def edge_histogram(self) -> Dict[int, int]:
        """Histogram ``{triangle count: number of directed product edges}``.

        Only edges with a non-zero count appear (plus possibly 0 for product
        edges whose factor edges carry no triangles); counts are over stored
        adjacency entries of ``C``.
        """
        # Collect, per factor, the component values restricted to the factor's
        # adjacency support, then convolve exactly as in vertex_histogram.
        a_first = self.edge_components[0][1]
        b_first = self.edge_components[0][2]
        # Support of C's adjacency = support(A) × support(B); use the first
        # component's mask (A ∘ A², which may be smaller) is not enough, so
        # rebuild the supports from the loop matrices + masked matrices:
        raise_if = not self.edge_components
        if raise_if:  # pragma: no cover - components are always non-empty
            raise ValueError("edge components missing")
        a_support = _support_union([m for _, m, _ in self.edge_components])
        b_support = _support_union([m for _, _, m in self.edge_components])
        a_vals = np.stack(
            [np.asarray(csr_gather(m, a_support[:, 0], a_support[:, 1])).ravel()
             for _, m, _ in self.edge_components],
            axis=1,
        )
        b_vals = np.stack(
            [np.asarray(csr_gather(m, b_support[:, 0], b_support[:, 1])).ravel()
             for _, _, m in self.edge_components],
            axis=1,
        )
        coefs = np.asarray([c for c, _, _ in self.edge_components], dtype=np.float64)
        a_unique, a_counts = np.unique(a_vals, axis=0, return_counts=True)
        b_unique, b_counts = np.unique(b_vals, axis=0, return_counts=True)
        hist: Dict[int, int] = {}
        for a_row, a_mult in zip(a_unique, a_counts):
            values = np.rint((coefs * a_row.astype(np.float64) * b_unique.astype(np.float64)).sum(axis=1)).astype(np.int64)
            for value, b_mult in zip(values, b_counts):
                if value == 0:
                    continue
                hist[int(value)] = hist.get(int(value), 0) + int(a_mult) * int(b_mult)
        return hist


class TriangleStatsGatherer:
    """Repeat-query evaluator over one :class:`KroneckerTriangleStats`.

    Wraps every edge-component matrix in a
    :class:`~repro.perf.kernels.CsrGatherer` (globally sorted row-major keys,
    one ``np.searchsorted`` per batch), so a consumer that evaluates many
    batches against the *same* statistics — the per-block loop of the
    streaming rank pipeline — pays the key-construction cost once instead of
    once per block.  Produces bit-identical values to
    :meth:`KroneckerTriangleStats.edge_values` / ``vertex_value``.
    """

    __slots__ = ("_stats", "_edge_gatherers")

    def __init__(self, stats: KroneckerTriangleStats):
        self._stats = stats
        self._edge_gatherers = tuple(
            (coef, CsrGatherer(ma), CsrGatherer(mb))
            for coef, ma, mb in stats.edge_components
        )

    @property
    def stats(self) -> KroneckerTriangleStats:
        """The wrapped factored statistics."""
        return self._stats

    def edge_values(self, ps: np.ndarray, qs: np.ndarray) -> np.ndarray:
        """``Δ_C[ps[t], qs[t]]`` via the cached-key gatherers."""
        ps = np.asarray(ps, dtype=np.int64)
        qs = np.asarray(qs, dtype=np.int64)
        i, k = factor_indices(ps, self._stats.n_factor_b)
        j, l = factor_indices(qs, self._stats.n_factor_b)
        total = np.zeros(np.broadcast_shapes(ps.shape, qs.shape), dtype=np.float64)
        for coef, ga, gb in self._edge_gatherers:
            total += coef * ga.gather(i, j).astype(np.float64) * gb.gather(k, l).astype(np.float64)
        return np.rint(total).astype(np.int64)

    def vertex_values(self, ps: np.ndarray) -> np.ndarray:
        """``t_C[ps[t]]`` (vertex components are dense vectors — plain fancy indexing)."""
        return np.asarray(self._stats.vertex_value(np.asarray(ps, dtype=np.int64)),
                          dtype=np.int64)


def _support_union(matrices: Sequence[sp.spmatrix]) -> np.ndarray:
    """Union of the non-zero positions of *matrices*, as an ``(m, 2)`` index array."""
    acc = None
    for mat in matrices:
        pattern = sp.csr_matrix(mat, copy=True)
        pattern.data = np.ones_like(pattern.data)
        acc = pattern if acc is None else acc + pattern
    coo = sp.coo_matrix(acc)
    return np.stack([coo.row, coo.col], axis=1)
