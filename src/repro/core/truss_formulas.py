"""Kronecker truss decomposition under the Theorem 3 assumptions.

Example 2 of the paper shows that the truss decomposition of ``C = A ⊗ B``
does **not** follow from the factor decompositions in general (the hub-cycle
square has a 4-truss even though neither factor does).  Theorem 3 identifies
a sufficient condition on the right factor — every edge of ``B`` participates
in at most one triangle (``Δ_B ≤ 1``) — under which the decomposition
transfers exactly:

    ``(p, q) ∈ T(κ)_C``  ⟺  ``(i, j) ∈ T(κ)_A`` and ``(k, l) ∈ T(3)_B``,

with ``(i, k) / (j, l)`` the factor indices of ``p / q``.  Equivalently, the
trussness of a product edge is the trussness of its ``A``-side edge when its
``B``-side edge lies in a triangle, and 2 otherwise.

This module checks the hypotheses, evaluates the transferred decomposition
(both lazily per edge and as a materialized trussness matrix), and exposes the
generator-side helper that pairs an arbitrary scale-free ``A`` with a
``Δ ≤ 1`` factor from :mod:`repro.generators.power_law` to produce graphs
with *known* truss decomposition — contribution (e) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.index_maps import factor_indices
from repro.graphs.adjacency import Graph, hadamard
from repro.perf.kernels import csr_gather
from repro.triangles.linear_algebra import edge_triangles
from repro.truss.decomposition import TrussDecomposition, truss_decomposition

__all__ = [
    "check_truss_factor_assumptions",
    "KroneckerTrussDecomposition",
    "kron_truss_decomposition",
]


def check_truss_factor_assumptions(factor_a: Graph, factor_b: Graph) -> None:
    """Validate the hypotheses of Theorem 3.

    Both factors undirected and loop-free, and ``max Δ_B ≤ 1``.  Raises
    ``ValueError`` with a specific message otherwise.
    """
    for name, factor in (("A", factor_a), ("B", factor_b)):
        if not isinstance(factor, Graph):
            raise TypeError(f"factor {name} must be an undirected Graph")
        if factor.has_self_loops:
            raise ValueError(f"Theorem 3 requires factor {name} to have no self loops")
    delta_b = edge_triangles(factor_b)
    if delta_b.nnz and int(delta_b.data.max()) > 1:
        raise ValueError(
            "Theorem 3 requires every edge of B to participate in at most one "
            f"triangle, but max Δ_B = {int(delta_b.data.max())}"
        )


@dataclass(frozen=True)
class KroneckerTrussDecomposition:
    """Truss decomposition of ``C = A ⊗ B`` in factored (Theorem 3) form.

    Attributes
    ----------
    factor_a_decomposition:
        Direct truss decomposition of the left factor.
    b_triangle_edges:
        0/1 sparse matrix marking the edges of ``B`` in ``T(3)_B`` (those that
        participate in a triangle).
    b_adjacency:
        Adjacency of ``B`` (needed to distinguish "trussness 2" product edges
        from non-edges).
    n_factor_b:
        ``n_B``, for index mapping.
    """

    factor_a_decomposition: TrussDecomposition
    b_triangle_edges: sp.csr_matrix
    b_adjacency: sp.csr_matrix
    n_factor_b: int

    @property
    def max_truss(self) -> int:
        """Largest ``κ`` with a non-empty ``κ``-truss in the product.

        Equal to the factor's maximum whenever ``B`` has at least one
        triangle edge, otherwise 2.
        """
        if self.b_triangle_edges.nnz == 0:
            return 2
        return self.factor_a_decomposition.max_truss

    def edge_trussness(self, p: int, q: int) -> int:
        """Trussness of product edge ``(p, q)`` (0 when the edge does not exist)."""
        return int(self.edge_trussness_batch(np.asarray([p]), np.asarray([q]))[0])

    def edge_trussness_batch(self, ps: np.ndarray, qs: np.ndarray) -> np.ndarray:
        """Trussness of a whole batch of product edges at once.

        The vectorized sibling of :meth:`edge_trussness`: one CSR gather per
        factor-side matrix (``A`` trussness, ``B`` adjacency, ``T(3)_B``
        marks), then a branch-free combination — no per-edge Python loop.
        """
        n_b = self.n_factor_b
        i, k = factor_indices(np.asarray(ps, dtype=np.int64), n_b)
        j, l = factor_indices(np.asarray(qs, dtype=np.int64), n_b)
        a_truss = np.asarray(csr_gather(self.factor_a_decomposition.trussness, i, j),
                             dtype=np.int64)
        b_edge = np.asarray(csr_gather(self.b_adjacency, k, l), dtype=np.int64)
        b_triangle = np.asarray(csr_gather(self.b_triangle_edges, k, l), dtype=np.int64)
        transferred = (b_triangle != 0) & (a_truss >= 3)
        out = np.where(transferred, a_truss, 2)
        out = np.where((a_truss == 0) | (b_edge == 0), 0, out)
        return out.astype(np.int64)

    def trussness_matrix(self) -> sp.csr_matrix:
        """Materialized trussness matrix of the whole product (use with care).

        Entries ``>= 3`` come from the Theorem 3 transfer; remaining product
        edges carry trussness 2.
        """
        truss_a = self.factor_a_decomposition.trussness
        high_a = truss_a.copy()
        high_a.data = np.where(high_a.data >= 3, high_a.data, 0)
        high_a.eliminate_zeros()
        transferred = sp.kron(high_a, self.b_triangle_edges, format="csr")

        a_pattern = sp.csr_matrix(truss_a, copy=True)
        a_pattern.data = np.ones_like(a_pattern.data)
        support = sp.kron(a_pattern, self.b_adjacency, format="csr")
        support.data = np.ones_like(support.data)

        transferred_pattern = sp.csr_matrix(transferred, copy=True)
        transferred_pattern.data = np.ones_like(transferred_pattern.data)
        base = (support - transferred_pattern) * 2
        out = sp.csr_matrix(base + transferred)
        out.eliminate_zeros()
        out.sort_indices()
        return out.astype(np.int64)

    def truss_sizes(self) -> Dict[int, int]:
        """Undirected edge count of each product ``κ``-truss, from factor data only.

        ``|T(κ)_C| = 2 |T(κ)_A| · |T(3)_B|`` for ``κ >= 3`` (unordered-edge
        counts; both factors are loop-free so no self loops arise in the
        product).  Empty when ``B`` has no triangle edges, matching the
        direct peeling of the product.
        """
        b_triangle_edge_count = self.b_triangle_edges.nnz // 2
        if b_triangle_edge_count == 0:
            return {}
        sizes_a = self.factor_a_decomposition.truss_sizes()
        return {k: 2 * count * b_triangle_edge_count for k, count in sizes_a.items()}


def kron_truss_decomposition(factor_a: Graph, factor_b: Graph) -> KroneckerTrussDecomposition:
    """Theorem 3: transfer the truss decomposition of ``A`` to ``C = A ⊗ B``.

    Raises ``ValueError`` when the hypotheses (loop-free factors, ``Δ_B ≤ 1``)
    do not hold — in that case only the direct peeling of the materialized
    product (:func:`repro.truss.truss_decomposition`) is exact, as Example 2
    demonstrates.
    """
    check_truss_factor_assumptions(factor_a, factor_b)
    decomp_a = truss_decomposition(factor_a)
    delta_b = edge_triangles(factor_b)
    t3_b = sp.csr_matrix(delta_b, copy=True)
    t3_b.data = (t3_b.data >= 1).astype(np.int64)
    t3_b.eliminate_zeros()
    return KroneckerTrussDecomposition(
        factor_a_decomposition=decomp_a,
        b_triangle_edges=t3_b,
        b_adjacency=factor_b.adjacency,
        n_factor_b=factor_b.n_vertices,
    )
