"""The implicit Kronecker product graph ``C = A ⊗ B``.

This is the generator object of the paper: the product graph is *never*
stored explicitly — it is fully described by its two small factors, which is
what makes trillion-edge benchmark graphs shareable and their ground-truth
statistics computable.  :class:`KroneckerGraph` supports

* index bookkeeping between product vertices and factor-vertex pairs,
* local queries (degree, neighbours, edge membership, induced subgraphs /
  egonets) that touch only factor rows,
* full materialization via ``scipy.sparse.kron`` for validation at small
  scale, with an explicit size guard, and
* vertex-label inheritance from the left factor (Section V construction).

The closed-form statistics themselves (degrees, triangle participation,
directed/labeled censuses, truss classes) live in the sibling ``*_formulas``
modules and are re-exported on this class as convenience methods.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core import index_maps
from repro.graphs.adjacency import Graph, hadamard, to_csr
from repro.graphs.directed import DirectedGraph
from repro.graphs.labeled import VertexLabeledGraph
from repro.perf.kernels import csr_has_entry

__all__ = ["KroneckerGraph"]

FactorType = Union[Graph, DirectedGraph, VertexLabeledGraph]

#: Refuse to materialize products with more stored entries than this unless
#: the caller explicitly raises the limit.
DEFAULT_MATERIALIZE_LIMIT = 50_000_000


class KroneckerGraph:
    """The (implicit) Kronecker product graph of two factor graphs.

    Parameters
    ----------
    factor_a, factor_b:
        The left and right factors.  Any mix of :class:`Graph`,
        :class:`DirectedGraph` and :class:`VertexLabeledGraph` is accepted;
        the product is undirected exactly when both factor adjacency matrices
        are symmetric.  When ``factor_a`` is vertex-labeled the product
        inherits its labels (``f_C(p) = f_A(p // n_B)``).
    name:
        Optional human-readable name (defaults to ``"A⊗B"`` built from the
        factor names).
    """

    __slots__ = ("factor_a", "factor_b", "_adj_a", "_adj_b", "name")

    def __init__(self, factor_a: FactorType, factor_b: FactorType, *, name: str = ""):
        self.factor_a = factor_a
        self.factor_b = factor_b
        self._adj_a = to_csr(factor_a.adjacency)
        self._adj_b = to_csr(factor_b.adjacency)
        if not name:
            a_name = factor_a.name or "A"
            b_name = factor_b.name or "B"
            name = f"{a_name}⊗{b_name}"
        self.name = name

    # ------------------------------------------------------------------
    # Size bookkeeping
    # ------------------------------------------------------------------
    @property
    def n_factor_a(self) -> int:
        """Number of vertices of the left factor ``n_A``."""
        return self._adj_a.shape[0]

    @property
    def n_factor_b(self) -> int:
        """Number of vertices of the right factor ``n_B``."""
        return self._adj_b.shape[0]

    @property
    def n_vertices(self) -> int:
        """``n_C = n_A · n_B``."""
        return self.n_factor_a * self.n_factor_b

    @property
    def nnz(self) -> int:
        """Stored non-zeros of ``C``: ``nnz(A) · nnz(B)`` (directed edge count)."""
        return self._adj_a.nnz * self._adj_b.nnz

    @property
    def n_self_loops(self) -> int:
        """Self loops of ``C``: one per pair of self-looped factor vertices."""
        loops_a = int(np.count_nonzero(self._adj_a.diagonal()))
        loops_b = int(np.count_nonzero(self._adj_b.diagonal()))
        return loops_a * loops_b

    @property
    def has_self_loops(self) -> bool:
        """Whether ``C`` has any self loop (requires loops in *both* factors)."""
        return self.n_self_loops > 0

    @property
    def is_undirected(self) -> bool:
        """Whether ``C`` is undirected (both factors symmetric)."""
        sym_a = (self._adj_a != self._adj_a.T).nnz == 0
        sym_b = (self._adj_b != self._adj_b.T).nnz == 0
        return sym_a and sym_b

    @property
    def n_edges(self) -> int:
        """Undirected edge count of ``C`` (unordered pairs, self loops once).

        Only meaningful for undirected products; for directed products use
        :attr:`nnz`.
        """
        if not self.is_undirected:
            raise ValueError("n_edges is defined for undirected products; use nnz")
        loops = self.n_self_loops
        return (self.nnz - loops) // 2 + loops

    @property
    def is_labeled(self) -> bool:
        """Whether the product carries vertex labels (left factor labeled)."""
        return isinstance(self.factor_a, VertexLabeledGraph)

    @property
    def n_labels(self) -> int:
        """Label-alphabet size inherited from the left factor."""
        if not self.is_labeled:
            raise ValueError("product is unlabeled (left factor has no labels)")
        return self.factor_a.n_labels

    # ------------------------------------------------------------------
    # Index maps
    # ------------------------------------------------------------------
    def factor_indices(self, p):
        """Map product vertex ``p`` (scalar or array) to ``(i, k)`` factor indices."""
        return index_maps.factor_indices(p, self.n_factor_b)

    def product_index(self, i, k):
        """Map factor pair ``(i, k)`` to the product vertex id ``i * n_B + k``."""
        return index_maps.product_index(i, k, self.n_factor_b)

    def label_of(self, p: int) -> int:
        """Inherited label of product vertex ``p`` (``f_C(p) = f_A(i(p))``)."""
        if not self.is_labeled:
            raise ValueError("product is unlabeled (left factor has no labels)")
        i, _ = self.factor_indices(int(p))
        return self.factor_a.label_of(int(i))

    def labels(self) -> np.ndarray:
        """Full label vector of the product (length ``n_C``)."""
        if not self.is_labeled:
            raise ValueError("product is unlabeled (left factor has no labels)")
        return np.repeat(self.factor_a.labels, self.n_factor_b)

    # ------------------------------------------------------------------
    # Local queries (never materialize C)
    # ------------------------------------------------------------------
    def has_edge(self, p: int, q: int) -> bool:
        """Whether ``C[p, q] = A[i(p), i(q)] · B[k(p), k(q)]`` is non-zero.

        Two binary searches on the factor ``indptr``/``indices`` arrays — no
        sparse temporaries are allocated.
        """
        i, k = self.factor_indices(int(p))
        j, l = self.factor_indices(int(q))
        return csr_has_entry(self._adj_a, i, j) and csr_has_entry(self._adj_b, k, l)

    def degree(self, p: int) -> int:
        """Degree of product vertex ``p`` (self loop excluded), from factor rows.

        Row sum of ``C`` at ``p`` is ``rowsum_A(i) · rowsum_B(k)``; a self loop
        exists only when both factor vertices have one and contributes one.
        The self-loop probe is a direct ``indptr``/``indices`` lookup.
        """
        i, k = self.factor_indices(int(p))
        row_a = int(self._adj_a.indptr[i + 1] - self._adj_a.indptr[i])
        row_b = int(self._adj_b.indptr[k + 1] - self._adj_b.indptr[k])
        loop = int(csr_has_entry(self._adj_a, i, i) and csr_has_entry(self._adj_b, k, k))
        return row_a * row_b - loop

    def degrees(self) -> np.ndarray:
        """Full degree vector of ``C`` (length ``n_C``); see also
        :func:`repro.core.degree_formulas.kron_degrees` for the formula view."""
        row_a = np.diff(self._adj_a.indptr).astype(np.int64)
        row_b = np.diff(self._adj_b.indptr).astype(np.int64)
        loops_a = (self._adj_a.diagonal() != 0).astype(np.int64)
        loops_b = (self._adj_b.diagonal() != 0).astype(np.int64)
        return np.kron(row_a, row_b) - np.kron(loops_a, loops_b)

    def neighbors(self, p: int, *, include_self_loop: bool = False) -> np.ndarray:
        """Sorted neighbour ids of product vertex ``p`` (computed from factor rows)."""
        i, k = self.factor_indices(int(p))
        a_nbrs = self._adj_a.indices[self._adj_a.indptr[i]:self._adj_a.indptr[i + 1]]
        b_nbrs = self._adj_b.indices[self._adj_b.indptr[k]:self._adj_b.indptr[k + 1]]
        if a_nbrs.size == 0 or b_nbrs.size == 0:
            return np.zeros(0, dtype=np.int64)
        qs = (a_nbrs[:, None].astype(np.int64) * self.n_factor_b + b_nbrs[None, :]).ravel()
        qs.sort()
        if not include_self_loop:
            qs = qs[qs != p]
        return qs

    def subgraph_adjacency(self, vertices: Sequence[int]) -> sp.csr_matrix:
        """Induced adjacency of ``C`` on *vertices*, without materializing ``C``.

        Entry ``(s, t)`` equals ``A[i_s, i_t] · B[k_s, k_t]``, i.e. the
        Hadamard product of the two factor submatrices indexed by the
        factor-index arrays of the selected vertices.
        """
        ps = np.asarray(vertices, dtype=np.int64)
        if ps.size and (ps.min() < 0 or ps.max() >= self.n_vertices):
            raise IndexError("product vertex id out of range")
        i_idx, k_idx = self.factor_indices(ps)
        sub_a = self._adj_a[i_idx][:, i_idx]
        sub_b = self._adj_b[k_idx][:, k_idx]
        return hadamard(sub_a, sub_b)

    def subgraph(self, vertices: Sequence[int]) -> Graph:
        """Induced subgraph of ``C`` on *vertices* as a :class:`Graph`.

        Requires the product to be undirected (use
        :meth:`subgraph_adjacency` for directed products).
        """
        sub = self.subgraph_adjacency(vertices)
        if not self.is_undirected:
            raise ValueError("subgraph() requires an undirected product; "
                             "use subgraph_adjacency()")
        return Graph(sub, name=f"{self.name}[sub]", validate=False)

    # ------------------------------------------------------------------
    # Edge iteration / materialization
    # ------------------------------------------------------------------
    def iter_edge_blocks(
        self,
        *,
        a_edges_per_block: int = 1024,
        a_entry_start: int = 0,
        a_entry_stop: Optional[int] = None,
    ) -> Iterator[np.ndarray]:
        """Stream the directed edge list of ``C`` in blocks.

        For each block of ``a_edges_per_block`` stored entries of ``A``, emit
        the ``(block · nnz(B), 2)`` array of product edges they induce; peak
        memory is bounded by the block size regardless of ``nnz(C)``.  This is
        the single-rank version of the communication-free distributed
        generation in :mod:`repro.parallel`.

        Parameters
        ----------
        a_entry_start, a_entry_stop:
            Half-open range of stored ``A`` entries (row-major CSR order) to
            stream; defaults to the full entry list.  A rank of the
            distributed generation passes its partition slice here so that
            only its share of the product is ever generated.
        """
        coo_a = self._adj_a.tocoo()
        coo_b = self._adj_b.tocoo()
        b_rows = coo_b.row.astype(np.int64)
        b_cols = coo_b.col.astype(np.int64)
        n_b = self.n_factor_b
        entry_stop = coo_a.nnz if a_entry_stop is None else int(a_entry_stop)
        if not 0 <= a_entry_start <= entry_stop <= coo_a.nnz:
            raise ValueError(
                f"entry range [{a_entry_start}, {entry_stop}) outside [0, {coo_a.nnz})"
            )
        for start in range(a_entry_start, entry_stop, a_edges_per_block):
            stop = min(start + a_edges_per_block, entry_stop)
            a_rows = coo_a.row[start:stop].astype(np.int64)
            a_cols = coo_a.col[start:stop].astype(np.int64)
            rows = (a_rows[:, None] * n_b + b_rows[None, :]).ravel()
            cols = (a_cols[:, None] * n_b + b_cols[None, :]).ravel()
            yield np.stack([rows, cols], axis=1)

    def iter_rank_edge_blocks(
        self, partition, *, a_edges_per_block: int = 1024
    ) -> Iterator[np.ndarray]:
        """Stream one rank's slice of the product edge list in bounded blocks.

        The partition-scoped sibling of :meth:`iter_edge_blocks`: only the
        ``A`` entries owned by *partition* (either layout from
        :mod:`repro.parallel.partition`) are expanded, so a rank of the
        communication-free generation holds at most
        ``a_edges_per_block · nnz(B)`` edges at a time no matter how large
        its slice is.  The statistics-annotated version lives in
        :func:`repro.parallel.distributed.iter_rank_edge_blocks`.
        """
        # Deferred so the partition dispatch has a single home in the
        # parallel layer without a module-level core → parallel cycle.
        from repro.parallel.partition import entry_range

        start, stop = entry_range(partition, self._adj_a.indptr)
        return self.iter_edge_blocks(
            a_edges_per_block=a_edges_per_block,
            a_entry_start=start,
            a_entry_stop=stop,
        )

    def edges(self, *, max_nnz: int = DEFAULT_MATERIALIZE_LIMIT) -> np.ndarray:
        """All directed edges of ``C`` as an array (guarded by ``max_nnz``).

        The ``(nnz, 2)`` output is preallocated and filled block by block from
        :meth:`iter_edge_blocks`, so peak memory is one output array plus one
        block — not the doubled list-append-then-concatenate footprint.
        """
        if self.nnz > max_nnz:
            raise MemoryError(
                f"product has {self.nnz} stored entries, above the limit {max_nnz}; "
                "use iter_edge_blocks() or repro.parallel streaming instead"
            )
        out = np.empty((self.nnz, 2), dtype=np.int64)
        filled = 0
        for block in self.iter_edge_blocks():
            out[filled:filled + block.shape[0]] = block
            filled += block.shape[0]
        return out

    def materialize_adjacency(self, *, max_nnz: int = DEFAULT_MATERIALIZE_LIMIT) -> sp.csr_matrix:
        """Materialize ``C = A ⊗ B`` as a CSR matrix (guarded by ``max_nnz``)."""
        if self.nnz > max_nnz:
            raise MemoryError(
                f"product has {self.nnz} stored entries, above the limit {max_nnz}; "
                "raise max_nnz explicitly if you really want to materialize it"
            )
        return sp.kron(self._adj_a, self._adj_b, format="csr").astype(np.int64)

    def materialize(self, *, max_nnz: int = DEFAULT_MATERIALIZE_LIMIT):
        """Materialize ``C`` with the most specific graph type available.

        Returns a :class:`VertexLabeledGraph` when the product is labeled, a
        :class:`Graph` when it is undirected, and a :class:`DirectedGraph`
        otherwise.
        """
        adj = self.materialize_adjacency(max_nnz=max_nnz)
        if self.is_labeled and self.is_undirected:
            return VertexLabeledGraph(adj, self.labels(), n_labels=self.n_labels,
                                      name=self.name, validate=False)
        if self.is_undirected:
            return Graph(adj, name=self.name, validate=False)
        return DirectedGraph(adj, name=self.name)

    # ------------------------------------------------------------------
    # Convenience: formula front-ends (implemented in sibling modules)
    # ------------------------------------------------------------------
    def vertex_triangles(self) -> np.ndarray:
        """Exact triangle participation at every product vertex (Thm 1 / Cor 1 / general)."""
        from repro.core.triangle_formulas import kron_vertex_triangles

        return kron_vertex_triangles(self.factor_a, self.factor_b)

    def edge_triangles(self) -> sp.csr_matrix:
        """Exact triangle participation at every product edge (Thm 2 / Cor 2 / general)."""
        from repro.core.triangle_formulas import kron_edge_triangles

        return kron_edge_triangles(self.factor_a, self.factor_b)

    def triangle_count(self) -> int:
        """Exact total triangle count ``τ(C)`` without materializing ``C``."""
        from repro.core.triangle_formulas import kron_triangle_count

        return kron_triangle_count(self.factor_a, self.factor_b)

    def kron_degrees(self) -> np.ndarray:
        """Exact degree vector via the Kronecker degree formula."""
        from repro.core.degree_formulas import kron_degrees

        return kron_degrees(self.factor_a, self.factor_b)

    def __repr__(self) -> str:
        kind = "undirected" if self.is_undirected else "directed"
        return (
            f"KroneckerGraph({self.name!r}, {kind}, n_vertices={self.n_vertices}, "
            f"nnz={self.nnz}, factors=({self.n_factor_a}, {self.n_factor_b}))"
        )
