"""Core contribution: non-stochastic Kronecker generation with exact triangle statistics.

* :class:`KroneckerGraph` — the implicit product graph ``C = A ⊗ B``.
* :mod:`repro.core.index_maps` — the α/β/γ block index maps.
* :mod:`repro.core.degree_formulas` — Kronecker degree formulas.
* :mod:`repro.core.triangle_formulas` — Theorems 1-2, Corollaries 1-2 and the
  general self-loop expansions, plus the lazy
  :class:`~repro.core.triangle_formulas.KroneckerTriangleStats` payload.
* :mod:`repro.core.directed_formulas` — Theorems 4-5 (directed census).
* :mod:`repro.core.labeled_formulas` — Theorems 6-7 (labeled census).
* :mod:`repro.core.truss_formulas` — Theorem 3 (truss transfer).
* :mod:`repro.core.validation` — formula-vs-direct validation harness.
"""

from repro.core.degree_formulas import (
    kron_degree_at,
    kron_degrees,
    kron_directed_in_degrees,
    kron_directed_out_degrees,
    kron_in_degrees,
    kron_max_degree_ratio,
    kron_out_degrees,
    kron_reciprocal_degrees,
    max_degree_ratio,
)
from repro.core.directed_formulas import (
    check_directed_factor_assumptions,
    kron_directed_edge_triangles,
    kron_directed_edge_triangles_at,
    kron_directed_part,
    kron_directed_vertex_triangles,
    kron_directed_vertex_triangles_at,
    kron_reciprocal_part,
)
from repro.core.clustering_formulas import (
    diag_of_power,
    kron_closed_walks,
    kron_closed_walks_at,
    kron_global_clustering,
    kron_local_clustering,
    kron_local_clustering_at,
    kron_wedge_total,
)
from repro.core.index_maps import (
    alpha,
    alpha_1based,
    beta,
    beta_1based,
    factor_indices,
    gamma,
    gamma_1based,
    product_index,
)
from repro.core.kronecker import KroneckerGraph
from repro.core.multi import (
    MultiKroneckerGraph,
    multi_kron_degrees,
    multi_kron_edge_triangles,
    multi_kron_triangle_count,
    multi_kron_vertex_triangles,
)
from repro.core.labeled_formulas import (
    check_labeled_factor_assumptions,
    kron_inherited_labels,
    kron_label_filter,
    kron_labeled_edge_triangles,
    kron_labeled_edge_triangles_at,
    kron_labeled_vertex_triangles,
    kron_labeled_vertex_triangles_at,
)
from repro.core.sampling import (
    WedgeSample,
    estimate_global_clustering,
    sample_product_edges,
    sample_vertices_by_degree,
    sample_wedges,
)
from repro.core.triangle_formulas import (
    KroneckerTriangleStats,
    TriangleStatsGatherer,
    cor1_vertex_triangles,
    cor2_edge_triangles,
    diag_of_cube,
    kron_edge_triangles,
    kron_edge_triangles_at,
    kron_triangle_count,
    kron_vertex_triangles,
    kron_vertex_triangles_at,
    self_loop_case,
    thm1_vertex_triangles,
    thm2_edge_triangles,
)
from repro.core.truss_formulas import (
    KroneckerTrussDecomposition,
    check_truss_factor_assumptions,
    kron_truss_decomposition,
)
from repro.core.validation import (
    ValidationAccumulator,
    ValidationReport,
    validate_directed_product,
    validate_egonets,
    validate_labeled_product,
    validate_truss_transfer,
    validate_undirected_product,
)

__all__ = [
    "KroneckerGraph",
    "MultiKroneckerGraph",
    "multi_kron_degrees",
    "multi_kron_vertex_triangles",
    "multi_kron_edge_triangles",
    "multi_kron_triangle_count",
    # sampling / auditing
    "WedgeSample",
    "sample_product_edges",
    "sample_vertices_by_degree",
    "sample_wedges",
    "estimate_global_clustering",
    # closed walks / clustering
    "diag_of_power",
    "kron_closed_walks",
    "kron_closed_walks_at",
    "kron_wedge_total",
    "kron_local_clustering",
    "kron_local_clustering_at",
    "kron_global_clustering",
    # index maps
    "alpha",
    "beta",
    "gamma",
    "alpha_1based",
    "beta_1based",
    "gamma_1based",
    "factor_indices",
    "product_index",
    # degrees
    "kron_degrees",
    "kron_degree_at",
    "kron_out_degrees",
    "kron_in_degrees",
    "kron_reciprocal_degrees",
    "kron_directed_out_degrees",
    "kron_directed_in_degrees",
    "max_degree_ratio",
    "kron_max_degree_ratio",
    # undirected triangle formulas
    "diag_of_cube",
    "self_loop_case",
    "thm1_vertex_triangles",
    "cor1_vertex_triangles",
    "thm2_edge_triangles",
    "cor2_edge_triangles",
    "kron_vertex_triangles",
    "kron_edge_triangles",
    "kron_triangle_count",
    "kron_vertex_triangles_at",
    "kron_edge_triangles_at",
    "KroneckerTriangleStats",
    "TriangleStatsGatherer",
    # directed formulas
    "check_directed_factor_assumptions",
    "kron_reciprocal_part",
    "kron_directed_part",
    "kron_directed_vertex_triangles",
    "kron_directed_vertex_triangles_at",
    "kron_directed_edge_triangles",
    "kron_directed_edge_triangles_at",
    # labeled formulas
    "check_labeled_factor_assumptions",
    "kron_inherited_labels",
    "kron_label_filter",
    "kron_labeled_vertex_triangles",
    "kron_labeled_vertex_triangles_at",
    "kron_labeled_edge_triangles",
    "kron_labeled_edge_triangles_at",
    # truss
    "check_truss_factor_assumptions",
    "KroneckerTrussDecomposition",
    "kron_truss_decomposition",
    # validation
    "ValidationReport",
    "ValidationAccumulator",
    "validate_undirected_product",
    "validate_directed_product",
    "validate_labeled_product",
    "validate_truss_transfer",
    "validate_egonets",
]
