"""Derived ground-truth statistics: closed walks, wedges and clustering coefficients.

The paper's conclusion points at further analytics whose ground truth a
Kronecker generator could emit alongside the graph.  Two families come
directly out of the machinery already in place:

* **Closed walks.**  By the diagonal-Kronecker distributivity (Prop. 2(f)),
  ``diag(C^k) = diag(A^k) ⊗ diag(B^k)`` for every walk length ``k`` — so the
  number of closed ``k``-walks at every product vertex is a factor-level
  computation.  ``k = 3`` recovers the triangle results; higher ``k`` feeds
  spectral and motif diagnostics.
* **Clustering coefficients.**  The local clustering coefficient
  ``c_p = 2 t_C[p] / (d_C[p](d_C[p]−1))`` and the global transitivity
  ``3 τ(C) / #wedges(C)`` combine two quantities that already factor
  (triangles and degrees), so the generator can publish exact clustering
  ground truth too.  The wedge total is computed from factor-level degree
  sums without any product-sized array.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.degree_formulas import kron_degree_at, kron_degrees
from repro.core.triangle_formulas import (
    KroneckerTriangleStats,
    kron_triangle_count,
    kron_vertex_triangles,
)
from repro.graphs.adjacency import Graph

__all__ = [
    "diag_of_power",
    "kron_closed_walks",
    "kron_closed_walks_at",
    "kron_wedge_total",
    "kron_local_clustering",
    "kron_local_clustering_at",
    "kron_global_clustering",
]


def diag_of_power(graph: Union[Graph, sp.spmatrix], k: int) -> np.ndarray:
    """``diag(A^k)`` as a dense vector (number of closed ``k``-walks per vertex).

    Computed by ``k - 1`` sparse matrix-matrix products followed by a masked
    row sum; intended for the small factors, not for products.
    """
    if k < 1:
        raise ValueError("walk length k must be >= 1")
    adj = graph.adjacency if isinstance(graph, Graph) else sp.csr_matrix(graph)
    if k == 1:
        return np.asarray(adj.diagonal(), dtype=np.int64)
    power = adj
    for _ in range(k - 2):
        power = (power @ adj).tocsr()
    # diag(P A) = rowsum(P ∘ Aᵗ); A is whatever the caller provided.
    masked = sp.csr_matrix(power).multiply(adj.T)
    return np.asarray(masked.sum(axis=1)).ravel().astype(np.int64)


def kron_closed_walks(factor_a: Graph, factor_b: Graph, k: int) -> np.ndarray:
    """Closed ``k``-walk counts at every vertex of ``C = A ⊗ B``.

    ``diag(C^k) = diag(A^k) ⊗ diag(B^k)`` holds for *any* factors (no
    self-loop hypotheses needed), directly from Prop. 2(f).
    """
    return np.kron(diag_of_power(factor_a, k), diag_of_power(factor_b, k))


def kron_closed_walks_at(
    factor_a: Graph, factor_b: Graph, k: int, p: Union[int, np.ndarray]
) -> Union[int, np.ndarray]:
    """Closed ``k``-walk count of selected product vertices (no full vector)."""
    walks_a = diag_of_power(factor_a, k)
    walks_b = diag_of_power(factor_b, k)
    n_b = factor_b.n_vertices
    i = np.asarray(p, dtype=np.int64) // n_b
    kk = np.asarray(p, dtype=np.int64) % n_b
    out = walks_a[i] * walks_b[kk]
    return out if isinstance(p, np.ndarray) else int(out)


def _degree_moments(graph: Graph) -> Tuple[float, float, float, float, float, float]:
    """Factor-level sums needed for the product's wedge total.

    Returns ``(Σa, Σa², Σs, Σ(a·s), Σ(a²·s), Σs)`` with ``a = d + s`` the raw
    row sums and ``s`` the 0/1 self-loop indicator... (only the combinations
    used by :func:`kron_wedge_total` are exposed).
    """
    d = graph.degrees().astype(np.float64)
    s = (graph.self_loop_vector() != 0).astype(np.float64)
    a = d + s
    return (a.sum(), (a ** 2).sum(), s.sum(), (a * s).sum(), ((a ** 2) * s).sum(), (s ** 2).sum())


def kron_wedge_total(factor_a: Graph, factor_b: Graph) -> int:
    """Total number of wedges (2-paths) of ``C = A ⊗ B`` from factor sums only.

    Uses ``#wedges = ½ (Σ_p d_p² − Σ_p d_p)`` with
    ``d_p = a_i b_k − s_i t_k`` (``a = d_A + s_A`` row sums, ``s`` loop
    indicators), whose first two moments factor into products of factor-level
    sums.
    """
    a_sum, a_sq_sum, s_sum, as_sum, a2s_sum, _ = _degree_moments(factor_a)
    b_sum, b_sq_sum, t_sum, bt_sum, b2t_sum, _ = _degree_moments(factor_b)
    # Σ_p d_p = Σ a Σ b − Σ s Σ t.
    first_moment = a_sum * b_sum - s_sum * t_sum
    # Σ_p d_p² = Σ (a_i b_k)² − 2 Σ a_i b_k s_i t_k + Σ (s_i t_k)²
    #          = Σa²Σb² − 2 Σ(a s) Σ(b t) + Σs Σt     (s, t are 0/1).
    second_moment = a_sq_sum * b_sq_sum - 2.0 * as_sum * bt_sum + s_sum * t_sum
    wedges = 0.5 * (second_moment - first_moment)
    return int(round(wedges))


def kron_local_clustering(factor_a: Graph, factor_b: Graph) -> np.ndarray:
    """Exact local clustering coefficient of every product vertex.

    ``c_p = 2 t_C[p] / (d_C[p](d_C[p] − 1))`` with both ingredients evaluated
    by their Kronecker formulas; vertices of degree < 2 get 0.
    """
    triangles = kron_vertex_triangles(factor_a, factor_b).astype(np.float64)
    degrees = kron_degrees(factor_a, factor_b).astype(np.float64)
    denom = degrees * (degrees - 1.0)
    out = np.zeros_like(triangles)
    mask = denom > 0
    out[mask] = 2.0 * triangles[mask] / denom[mask]
    return out


def kron_local_clustering_at(
    factor_a: Graph, factor_b: Graph, p: Union[int, np.ndarray]
) -> Union[float, np.ndarray]:
    """Local clustering coefficient of selected product vertices, batched.

    Combines the factored triangle point query
    (:meth:`~repro.core.triangle_formulas.KroneckerTriangleStats.vertex_value`)
    with the factored degree point query — both vectorized — so a batch of
    ``q`` vertices costs ``O(q)`` after the factor-sized precomputation,
    never ``O(n_C)``.
    """
    scalar_input = np.isscalar(p)
    p_arr = np.asarray(p, dtype=np.int64)
    triangles = np.asarray(
        KroneckerTriangleStats.from_factors(factor_a, factor_b).vertex_value(p_arr),
        dtype=np.float64,
    )
    degrees = np.asarray(kron_degree_at(factor_a, factor_b, p_arr), dtype=np.float64)
    denom = degrees * (degrees - 1.0)
    out = np.divide(2.0 * triangles, denom, out=np.zeros_like(triangles), where=denom > 0)
    return float(out) if scalar_input else out


def kron_global_clustering(factor_a: Graph, factor_b: Graph) -> float:
    """Exact transitivity ``3 τ(C) / #wedges(C)`` from factor-level data only."""
    wedges = kron_wedge_total(factor_a, factor_b)
    if wedges == 0:
        return 0.0
    return 3.0 * kron_triangle_count(factor_a, factor_b) / wedges
