"""Validation harness: Kronecker formulas vs. direct computation.

The entire point of the paper's generator is that the formula-side statistics
*are* the ground truth for the generated graph; this module closes the loop
by re-deriving every statistic directly (materializing the product at small
scale, or sampling egonets at large scale) and comparing.  It is used by the
test-suite, by the benchmarks (which report the agreement), and is exposed as
a public API so downstream users can self-check their own factor choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.degree_formulas import kron_degrees
from repro.core.directed_formulas import (
    kron_directed_edge_triangles,
    kron_directed_vertex_triangles,
)
from repro.core.kronecker import KroneckerGraph
from repro.core.labeled_formulas import (
    kron_inherited_labels,
    kron_labeled_edge_triangles,
    kron_labeled_vertex_triangles,
)
from repro.core.triangle_formulas import KroneckerTriangleStats, kron_edge_triangles, kron_vertex_triangles
from repro.core.truss_formulas import KroneckerTrussDecomposition, kron_truss_decomposition
from repro.graphs.adjacency import Graph
from repro.graphs.directed import DirectedGraph
from repro.graphs.egonet import egonet
from repro.graphs.labeled import VertexLabeledGraph
from repro.triangles.directed_counts import (
    directed_edge_triangle_counts,
    directed_vertex_triangle_counts,
)
from repro.triangles.labeled_counts import (
    labeled_edge_triangle_counts,
    labeled_vertex_triangle_counts,
)
from repro.triangles.linear_algebra import edge_triangles, vertex_triangles
from repro.truss.decomposition import truss_decomposition

__all__ = [
    "ValidationReport",
    "ValidationAccumulator",
    "validate_undirected_product",
    "validate_directed_product",
    "validate_labeled_product",
    "validate_truss_transfer",
    "validate_egonets",
]


@dataclass
class ValidationReport:
    """Outcome of one formula-vs-direct comparison.

    Attributes
    ----------
    name:
        Which validation was run.
    checks:
        Mapping from check name to a boolean pass/fail.
    details:
        Optional per-check human-readable detail (max absolute discrepancy,
        number of sampled vertices, ...).
    """

    name: str
    checks: Dict[str, bool] = field(default_factory=dict)
    details: Dict[str, str] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when every individual check passed."""
        return all(self.checks.values()) and bool(self.checks)

    def record(self, check: str, ok: bool, detail: str = "") -> None:
        """Record one check outcome."""
        self.checks[check] = bool(ok)
        if detail:
            self.details[check] = detail

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"ValidationReport({self.name}): {'PASS' if self.passed else 'FAIL'}"]
        for check, ok in self.checks.items():
            detail = self.details.get(check, "")
            lines.append(f"  [{'ok' if ok else 'FAIL'}] {check}" + (f" — {detail}" if detail else ""))
        return "\n".join(lines)


def _matrices_equal(a: sp.spmatrix, b: sp.spmatrix) -> Tuple[bool, int]:
    diff = sp.csr_matrix(a) - sp.csr_matrix(b)
    diff.eliminate_zeros()
    max_abs = int(np.abs(diff.data).max()) if diff.nnz else 0
    return diff.nnz == 0, max_abs


def validate_undirected_product(factor_a: Graph, factor_b: Graph,
                                *, max_nnz: int = 20_000_000) -> ValidationReport:
    """Compare Theorem 1/2 (and general-case) formulas against the materialized product."""
    report = ValidationReport("undirected_product")
    product = KroneckerGraph(factor_a, factor_b)
    materialized = product.materialize(max_nnz=max_nnz)

    formula_degrees = kron_degrees(factor_a, factor_b)
    direct_degrees = materialized.degrees()
    ok = bool(np.array_equal(formula_degrees, direct_degrees))
    report.record("degrees", ok,
                  f"max |Δ| = {int(np.abs(formula_degrees - direct_degrees).max()) if not ok else 0}")

    formula_t = kron_vertex_triangles(factor_a, factor_b)
    direct_t = vertex_triangles(materialized)
    ok = bool(np.array_equal(formula_t, direct_t))
    report.record("vertex_triangles", ok,
                  f"max |Δ| = {int(np.abs(formula_t - direct_t).max()) if not ok else 0}")

    formula_delta = kron_edge_triangles(factor_a, factor_b)
    direct_delta = edge_triangles(materialized)
    ok, max_abs = _matrices_equal(formula_delta, direct_delta)
    report.record("edge_triangles", ok, f"max |Δ| = {max_abs}")
    return report


def validate_directed_product(factor_a: DirectedGraph, factor_b: Graph,
                              *, max_nnz: int = 20_000_000) -> ValidationReport:
    """Compare Theorems 4/5 against the directed census of the materialized product."""
    report = ValidationReport("directed_product")
    product = KroneckerGraph(factor_a, factor_b)
    materialized = DirectedGraph(product.materialize_adjacency(max_nnz=max_nnz), name=product.name)

    formula_v = kron_directed_vertex_triangles(factor_a, factor_b)
    direct_v = directed_vertex_triangle_counts(materialized)
    for name, formula_vec in formula_v.items():
        ok = bool(np.array_equal(formula_vec, direct_v[name]))
        report.record(f"vertex[{name}]", ok)

    formula_e = kron_directed_edge_triangles(factor_a, factor_b)
    direct_e = directed_edge_triangle_counts(materialized)
    for name, formula_mat in formula_e.items():
        ok, max_abs = _matrices_equal(formula_mat, direct_e[name])
        report.record(f"edge[{name}]", ok, f"max |Δ| = {max_abs}")
    return report


def validate_labeled_product(factor_a: VertexLabeledGraph, factor_b: Graph,
                             *, max_nnz: int = 20_000_000) -> ValidationReport:
    """Compare Theorems 6/7 against the labeled census of the materialized product."""
    report = ValidationReport("labeled_product")
    product = KroneckerGraph(factor_a, factor_b)
    adj_c = product.materialize_adjacency(max_nnz=max_nnz)
    labels_c = kron_inherited_labels(factor_a, factor_b)
    materialized = VertexLabeledGraph(adj_c, labels_c, n_labels=factor_a.n_labels,
                                      name=product.name, validate=False)

    formula_v = kron_labeled_vertex_triangles(factor_a, factor_b)
    direct_v = labeled_vertex_triangle_counts(materialized)
    for t, formula_vec in formula_v.items():
        ok = bool(np.array_equal(formula_vec, direct_v[t]))
        report.record(f"vertex[{t}]", ok)

    formula_e = kron_labeled_edge_triangles(factor_a, factor_b)
    direct_e = labeled_edge_triangle_counts(materialized)
    for t, formula_mat in formula_e.items():
        ok, max_abs = _matrices_equal(formula_mat, direct_e[t])
        report.record(f"edge[{t}]", ok, f"max |Δ| = {max_abs}")
    return report


def validate_truss_transfer(factor_a: Graph, factor_b: Graph,
                            *, max_nnz: int = 20_000_000) -> ValidationReport:
    """Compare Theorem 3's transferred truss decomposition against direct peeling."""
    report = ValidationReport("truss_transfer")
    transferred = kron_truss_decomposition(factor_a, factor_b)
    product = KroneckerGraph(factor_a, factor_b)
    materialized = product.materialize(max_nnz=max_nnz)
    direct = truss_decomposition(materialized)

    ok = transferred.max_truss == direct.max_truss
    report.record("max_truss", ok,
                  f"formula={transferred.max_truss}, direct={direct.max_truss}")

    formula_matrix = transferred.trussness_matrix()
    ok, max_abs = _matrices_equal(formula_matrix, direct.trussness)
    report.record("trussness_matrix", ok, f"max |Δ| = {max_abs}")

    formula_sizes = transferred.truss_sizes()
    direct_sizes = direct.truss_sizes()
    ok = formula_sizes == direct_sizes
    report.record("truss_sizes", ok, f"formula={formula_sizes}, direct={direct_sizes}")
    return report


class ValidationAccumulator:
    """On-the-fly validator for streamed generation aggregates.

    The streaming pipeline never merges the per-rank edge lists; what it
    *can* afford is the allreduce of the per-rank
    :class:`~repro.parallel.streaming.StreamingRankAccumulator` aggregates.
    This class holds the closed-form, factor-sized expectations for exactly
    those aggregates — edge count, out-degree histogram,
    triangle-participation histogram and total, trussness census — and
    compares the reduced aggregate against them.  A dropped, duplicated or
    tampered rank slice perturbs at least one aggregate, so corruption is
    caught without the product ever existing in one place.

    Every expectation is computed from per-factor quantities only (degree
    profiles, the factored triangle components, the Theorem 3 truss
    transfer); nothing here allocates a length-``n_C`` array.  The aggregate
    argument is duck-typed (``n_edges``, ``degree_histogram(n)``,
    ``triangle_histogram()``, ``triangle_total``, ``trussness_census()``,
    ``with_statistics``, ``with_trussness``) so this module stays independent
    of :mod:`repro.parallel`.
    """

    def __init__(
        self,
        factor_a: Graph,
        factor_b: Graph,
        *,
        stats: Optional[KroneckerTriangleStats] = None,
        truss: Optional[KroneckerTrussDecomposition] = None,
    ):
        self.factor_a = factor_a
        self.factor_b = factor_b
        self._stats = stats
        self._truss = truss
        self.expected_edges = factor_a.nnz * factor_b.nnz
        self.n_vertices = factor_a.n_vertices * factor_b.n_vertices

    # -- factor-side expectations --------------------------------------
    def _stats_or_build(self) -> KroneckerTriangleStats:
        if self._stats is None:
            self._stats = KroneckerTriangleStats.from_factors(self.factor_a, self.factor_b)
        return self._stats

    def _truss_or_build(self) -> KroneckerTrussDecomposition:
        if self._truss is None:
            self._truss = kron_truss_decomposition(self.factor_a, self.factor_b)
        return self._truss

    def expected_degree_histogram(self) -> Dict[int, int]:
        """``{out-entry count: #product vertices}`` from the factor profiles.

        Product vertex ``(i, k)`` has raw out-entry count
        ``row_nnz_A(i) · row_nnz_B(k)`` (self loops included, matching what a
        stream consumer counts), so the histogram is the multiplicative
        convolution of the two factor row-count tabulations.
        """
        row_a = np.diff(self.factor_a.adjacency.indptr).astype(np.int64)
        row_b = np.diff(self.factor_b.adjacency.indptr).astype(np.int64)
        va, ca = np.unique(row_a, return_counts=True)
        vb, cb = np.unique(row_b, return_counts=True)
        values = np.multiply.outer(va, vb).ravel()
        weights = np.multiply.outer(ca, cb).ravel().astype(np.int64)
        uniq, inverse = np.unique(values, return_inverse=True)
        sums = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(sums, inverse, weights)
        return {int(v): int(c) for v, c in zip(uniq, sums)}

    def expected_triangle_total(self) -> int:
        """``Σ_{(p,q) ∈ E_C} Δ_C[p, q]`` from component sums only.

        ``Σ (M_A ⊗ M_B) = (Σ M_A)(Σ M_B)`` term by term in the factored
        expansion; for loop-free factors this equals ``6 τ(C)``.
        """
        total = 0.0
        for coef, ma, mb in self._stats_or_build().edge_components:
            total += coef * float(ma.sum()) * float(mb.sum())
        return int(round(total))

    def expected_triangle_histogram(self) -> Dict[int, int]:
        """``{Δ value: #directed edges}`` including the zero bin."""
        hist = dict(self._stats_or_build().edge_histogram())
        nonzero = sum(hist.values())
        zero = self.expected_edges - nonzero
        if zero:
            hist[0] = hist.get(0, 0) + zero
        return hist

    def expected_trussness_census(self) -> Dict[int, int]:
        """``{trussness: #directed product edges}`` via the Theorem 3 transfer.

        An ``A`` edge with trussness ``t ≥ 3`` contributes ``t`` for each of
        the ``|T(3)_B|`` triangle edges of ``B`` and 2 for the rest; every
        other product edge has trussness 2.
        """
        truss = self._truss_or_build()
        trussness_a = truss.factor_a_decomposition.trussness
        t3_directed = int(truss.b_triangle_edges.nnz)
        census: Dict[int, int] = {}
        values, counts = np.unique(trussness_a.data, return_counts=True)
        transferred = 0
        for t, count in zip(values, counts):
            if int(t) < 3:
                continue
            block = int(count) * t3_directed
            if block:
                census[int(t)] = census.get(int(t), 0) + block
                transferred += block
        base = self.expected_edges - transferred
        if base:
            census[2] = census.get(2, 0) + base
        return census

    # -- the check ------------------------------------------------------
    def validate(self, aggregate) -> ValidationReport:
        """Compare one (rank-reduced) aggregate against the expectations."""
        report = ValidationReport("streaming_aggregates")
        report.record(
            "edge_count",
            aggregate.n_edges == self.expected_edges,
            f"streamed={aggregate.n_edges}, formula={self.expected_edges}",
        )
        streamed_degrees = aggregate.degree_histogram(self.n_vertices)
        expected_degrees = self.expected_degree_histogram()
        report.record(
            "degree_histogram",
            streamed_degrees == expected_degrees,
            f"{len(expected_degrees)} distinct degrees",
        )
        if getattr(aggregate, "with_statistics", False):
            expected_total = self.expected_triangle_total()
            report.record(
                "triangle_total",
                aggregate.triangle_total == expected_total,
                f"streamed={aggregate.triangle_total}, formula={expected_total}",
            )
            streamed_hist = aggregate.triangle_histogram()
            expected_hist = self.expected_triangle_histogram()
            report.record(
                "triangle_histogram",
                streamed_hist == expected_hist,
                f"{len(expected_hist)} distinct values",
            )
        if getattr(aggregate, "with_trussness", False):
            streamed_census = aggregate.trussness_census()
            expected_census = self.expected_trussness_census()
            report.record(
                "trussness_census",
                streamed_census == expected_census,
                f"streamed={streamed_census}, formula={expected_census}",
            )
        return report


def validate_egonets(
    factor_a: Graph,
    factor_b: Graph,
    vertices: Optional[Sequence[int]] = None,
    *,
    n_samples: int = 9,
    seed: int = 0,
) -> ValidationReport:
    """Figure 7-style spot check: egonet counts vs. formula values, no materialization.

    Parameters
    ----------
    factor_a, factor_b:
        Undirected factors of the product.
    vertices:
        Product vertex ids to check; when omitted, ``n_samples`` vertices are
        drawn uniformly at random (seeded).
    """
    report = ValidationReport("egonet_spot_check")
    product = KroneckerGraph(factor_a, factor_b)
    if vertices is None:
        rng = np.random.default_rng(seed)
        vertices = rng.integers(0, product.n_vertices, size=n_samples).tolist()
    formula_degrees = kron_degrees(factor_a, factor_b)
    formula_t = kron_vertex_triangles(factor_a, factor_b)
    for p in vertices:
        ego = egonet(product, int(p))
        deg_ok = ego.degree_of_center() == int(formula_degrees[p])
        tri_ok = ego.triangles_at_center() == int(formula_t[p])
        report.record(
            f"vertex[{int(p)}]",
            deg_ok and tri_ok,
            f"degree ego={ego.degree_of_center()} formula={int(formula_degrees[p])}; "
            f"triangles ego={ego.triangles_at_center()} formula={int(formula_t[p])}",
        )
    return report
