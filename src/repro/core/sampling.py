"""Sampling from the implicit Kronecker product (validation at unbuildable scales).

When the product is too large even to stream end-to-end, a benchmark consumer
still wants to *audit* the published ground truth.  Because every stored
entry of ``C = A ⊗ B`` corresponds to exactly one (A-entry, B-entry) pair,
uniform sampling over the product's edges, degree-biased sampling over its
vertices, and wedge sampling (for an unbiased transitivity estimate) all
reduce to factor-level draws.  This module implements those samplers plus the
sampling-based estimators they feed, which the tests compare against the
exact Kronecker-formula values.

Everything takes an explicit ``numpy.random.Generator`` (or a seed) so audits
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.graphs.adjacency import Graph

__all__ = [
    "sample_product_edges",
    "sample_vertices_by_degree",
    "sample_wedges",
    "estimate_global_clustering",
    "WedgeSample",
]

RngLike = Union[int, np.random.Generator, None]


def _as_rng(rng: RngLike) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _coo(graph: Graph):
    coo = graph.adjacency.tocoo()
    return coo.row.astype(np.int64), coo.col.astype(np.int64)


def sample_product_edges(
    factor_a: Graph, factor_b: Graph, n_samples: int, *, rng: RngLike = None
) -> np.ndarray:
    """Uniform sample of stored (directed) edges of ``C = A ⊗ B``.

    Each product entry is the pairing of one ``A`` entry with one ``B``
    entry, so drawing both uniformly and independently gives an exactly
    uniform sample over the ``nnz(A)·nnz(B)`` product entries.

    Returns an ``(n_samples, 2)`` array of ``(p, q)`` pairs.
    """
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    gen = _as_rng(rng)
    rows_a, cols_a = _coo(factor_a)
    rows_b, cols_b = _coo(factor_b)
    if rows_a.size == 0 or rows_b.size == 0:
        raise ValueError("both factors must have at least one edge")
    pick_a = gen.integers(0, rows_a.size, size=n_samples)
    pick_b = gen.integers(0, rows_b.size, size=n_samples)
    n_b = factor_b.n_vertices
    p = rows_a[pick_a] * n_b + rows_b[pick_b]
    q = cols_a[pick_a] * n_b + cols_b[pick_b]
    return np.stack([p, q], axis=1)


def sample_vertices_by_degree(
    factor_a: Graph, factor_b: Graph, n_samples: int, *, rng: RngLike = None
) -> np.ndarray:
    """Sample product vertices with probability proportional to their adjacency row count.

    Equivalent to taking the source endpoint of a uniform product-edge sample;
    for loop-free factors the row count equals the degree, so this is exact
    degree-biased vertex sampling — the distribution a triangle-audit wants,
    since high-degree vertices carry most of the triangle mass.
    """
    edges = sample_product_edges(factor_a, factor_b, n_samples, rng=rng)
    return edges[:, 0]


@dataclass(frozen=True)
class WedgeSample:
    """A sampled wedge (2-path) of the product and whether it is closed.

    Attributes
    ----------
    center:
        The centre vertex ``p`` of the wedge.
    endpoints:
        The two distinct neighbours ``(u, w)`` forming the wedge.
    closed:
        Whether the edge ``(u, w)`` exists in the product, i.e. the wedge is
        part of a triangle.
    """

    center: int
    endpoints: Tuple[int, int]
    closed: bool


def sample_wedges(
    factor_a: Graph,
    factor_b: Graph,
    n_samples: int,
    *,
    rng: RngLike = None,
    max_attempts_factor: int = 50,
) -> list:
    """Sample wedges of ``C`` uniformly at random (loop-free factors).

    Uses rejection sampling: centres are proposed proportionally to
    ``d_p² = (d_A[i] d_B[k])²`` (which factorizes, so the proposal is two
    independent factor-level categorical draws) and accepted with probability
    ``(d_p − 1)/d_p``, which yields centres distributed proportionally to
    ``d_p (d_p − 1)`` — i.e. to the number of wedges at the centre.  Two
    distinct neighbours are then drawn uniformly, giving a uniform wedge.

    Raises ``ValueError`` if either factor carries self loops (the degree
    factorization used by the proposal assumes loop-free factors) or if the
    product has no wedges.
    """
    if factor_a.has_self_loops or factor_b.has_self_loops:
        raise ValueError("wedge sampling assumes loop-free factors")
    gen = _as_rng(rng)
    d_a = factor_a.degrees().astype(np.float64)
    d_b = factor_b.degrees().astype(np.float64)
    weights_a = d_a ** 2
    weights_b = d_b ** 2
    from repro.core.clustering_formulas import kron_wedge_total

    if weights_a.sum() == 0 or weights_b.sum() == 0 or kron_wedge_total(factor_a, factor_b) == 0:
        raise ValueError("product has no wedges to sample")
    prob_a = weights_a / weights_a.sum()
    prob_b = weights_b / weights_b.sum()
    n_b = factor_b.n_vertices

    # Local adjacency accessors working purely on the factors.
    from repro.core.kronecker import KroneckerGraph

    product = KroneckerGraph(factor_a, factor_b)

    samples: list = []
    attempts = 0
    max_attempts = max_attempts_factor * max(1, n_samples)
    while len(samples) < n_samples and attempts < max_attempts:
        attempts += 1
        i = int(gen.choice(d_a.size, p=prob_a))
        k = int(gen.choice(d_b.size, p=prob_b))
        degree = d_a[i] * d_b[k]
        if degree < 2:
            continue
        # Accept with probability (d - 1) / d to convert the d² proposal into d(d-1).
        if gen.random() >= (degree - 1.0) / degree:
            continue
        p = i * n_b + k
        neighbours = product.neighbors(p)
        u, w = gen.choice(neighbours, size=2, replace=False)
        closed = product.has_edge(int(u), int(w))
        samples.append(WedgeSample(center=int(p), endpoints=(int(u), int(w)), closed=bool(closed)))
    if len(samples) < n_samples:
        raise RuntimeError(
            f"wedge sampling accepted only {len(samples)}/{n_samples} proposals "
            f"after {attempts} attempts"
        )
    return samples


def estimate_global_clustering(
    factor_a: Graph,
    factor_b: Graph,
    n_samples: int = 2000,
    *,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of the product's transitivity from wedge samples.

    The fraction of sampled wedges that are closed is an unbiased estimator of
    ``3 τ(C) / #wedges(C)``; the exact value is available from
    :func:`repro.core.kron_global_clustering` — the pair gives auditors an
    end-to-end check that needs nothing but factor-level data.
    """
    samples = sample_wedges(factor_a, factor_b, n_samples, rng=rng)
    closed = sum(1 for s in samples if s.closed)
    return closed / len(samples)
