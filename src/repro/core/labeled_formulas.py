"""Kronecker formulas for labeled triangle participation (Theorems 6 and 7).

Setting of Section V: the left factor ``A`` is an undirected, vertex-labeled
graph without self loops; the right factor ``B`` is unlabeled, undirected and
may carry self loops.  The product inherits its labels from ``A``
(``f_C(p) = f_A(α(p))``), which makes the label filters factor as
``Π_{C,q} = Π_{A,q} ⊗ I_B``, and for every labeled triangle type
``τ = (q1, q2, q3)``:

.. math::

    t^{(τ)}_C = t^{(τ)}_A ⊗ \\mathrm{diag}(B^3), \\qquad
    Δ^{(τ)}_C = Δ^{(τ)}_A ⊗ (B ∘ B^2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.core.triangle_formulas import _edge_census_point_query, diag_of_cube
from repro.graphs.adjacency import Graph, hadamard
from repro.graphs.labeled import VertexLabeledGraph, vertex_triangle_label_types, edge_triangle_label_types
from repro.triangles.labeled_counts import (
    labeled_edge_triangle_counts,
    labeled_vertex_triangle_counts,
)

__all__ = [
    "check_labeled_factor_assumptions",
    "kron_inherited_labels",
    "kron_label_filter",
    "kron_labeled_vertex_triangles",
    "kron_labeled_edge_triangles",
    "kron_labeled_vertex_triangles_at",
    "kron_labeled_edge_triangles_at",
]

LabelType = Tuple[int, int, int]


def check_labeled_factor_assumptions(factor_a: VertexLabeledGraph, factor_b: Graph) -> None:
    """Validate the hypotheses of Theorems 6-7 (labeled, loop-free ``A``; undirected ``B``)."""
    if not isinstance(factor_a, VertexLabeledGraph):
        raise TypeError("factor A must be a VertexLabeledGraph")
    if factor_a.has_self_loops:
        raise ValueError("Theorems 6-7 require diag(A) = 0")
    if not isinstance(factor_b, Graph):
        raise TypeError("factor B must be an undirected Graph")


def kron_inherited_labels(factor_a: VertexLabeledGraph, factor_b: Graph) -> np.ndarray:
    """Labels of the product: ``f_C(p) = f_A(p // n_B)`` as a length-``n_C`` vector."""
    return np.repeat(factor_a.labels, factor_b.n_vertices)


def kron_label_filter(factor_a: VertexLabeledGraph, factor_b: Graph, q: int) -> sp.csr_matrix:
    """``Π_{C,q} = Π_{A,q} ⊗ I_B`` — the product's label filter in factored form."""
    identity_b = sp.identity(factor_b.n_vertices, dtype=np.int64, format="csr")
    return sp.kron(factor_a.filter(q), identity_b, format="csr")


def kron_labeled_vertex_triangles(
    factor_a: VertexLabeledGraph,
    factor_b: Graph,
    types: Optional[Iterable[LabelType]] = None,
) -> Dict[LabelType, np.ndarray]:
    """Theorem 6: ``t^(τ)_C = t^(τ)_A ⊗ diag(B³)`` for each labeled type."""
    check_labeled_factor_assumptions(factor_a, factor_b)
    requested = [tuple(t) for t in types] if types is not None \
        else vertex_triangle_label_types(factor_a.n_labels)
    a_counts = labeled_vertex_triangle_counts(factor_a, requested)
    b_cube = diag_of_cube(factor_b)
    return {t: np.kron(vec, b_cube) for t, vec in a_counts.items()}


def kron_labeled_vertex_triangles_at(
    factor_a: VertexLabeledGraph,
    factor_b: Graph,
    p: Union[int, np.ndarray],
    types: Optional[Iterable[LabelType]] = None,
) -> Dict[LabelType, Union[int, np.ndarray]]:
    """Point-query version of Theorem 6."""
    check_labeled_factor_assumptions(factor_a, factor_b)
    requested = [tuple(t) for t in types] if types is not None \
        else vertex_triangle_label_types(factor_a.n_labels)
    a_counts = labeled_vertex_triangle_counts(factor_a, requested)
    b_cube = diag_of_cube(factor_b)
    n_b = factor_b.n_vertices
    i = np.asarray(p, dtype=np.int64) // n_b
    k = np.asarray(p, dtype=np.int64) % n_b
    out: Dict[LabelType, Union[int, np.ndarray]] = {}
    for t, vec in a_counts.items():
        value = vec[i] * b_cube[k]
        out[t] = value if isinstance(p, np.ndarray) else int(value)
    return out


def kron_labeled_edge_triangles_at(
    factor_a: VertexLabeledGraph,
    factor_b: Graph,
    p: Union[int, np.ndarray],
    q: Union[int, np.ndarray],
    types: Optional[Iterable[LabelType]] = None,
) -> Dict[LabelType, Union[int, np.ndarray]]:
    """Batched point-query version of Theorem 7.

    ``Δ^(τ)_C[p, q] = Δ^(τ)_A[i, j] · (B ∘ B²)[k, l]`` evaluated for a whole
    batch of product edges with vectorized CSR gathers on the factor-sized
    matrices only.
    """
    check_labeled_factor_assumptions(factor_a, factor_b)
    requested = [tuple(t) for t in types] if types is not None \
        else edge_triangle_label_types(factor_a.n_labels)
    a_counts = labeled_edge_triangle_counts(factor_a, requested)
    adj_b = factor_b.adjacency
    b_masked = hadamard(adj_b, adj_b @ adj_b)
    return _edge_census_point_query(a_counts, b_masked, factor_b.n_vertices, p, q)


def kron_labeled_edge_triangles(
    factor_a: VertexLabeledGraph,
    factor_b: Graph,
    types: Optional[Iterable[LabelType]] = None,
) -> Dict[LabelType, sp.csr_matrix]:
    """Theorem 7: ``Δ^(τ)_C = Δ^(τ)_A ⊗ (B ∘ B²)`` for each labeled type."""
    check_labeled_factor_assumptions(factor_a, factor_b)
    requested = [tuple(t) for t in types] if types is not None \
        else edge_triangle_label_types(factor_a.n_labels)
    a_counts = labeled_edge_triangle_counts(factor_a, requested)
    adj_b = factor_b.adjacency
    b_masked = hadamard(adj_b, adj_b @ adj_b)
    return {t: sp.kron(mat, b_masked, format="csr") for t, mat in a_counts.items()}
