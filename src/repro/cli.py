"""Command-line interface for generating and validating Kronecker benchmark graphs.

The CLI mirrors the workflow a benchmark consumer would follow with the
published artefacts of the paper:

``repro-kron generate``
    Build two factor graphs (from any of the built-in generators), save them
    as a compressed Kronecker bundle (``.npz``) — the shareable representation
    of the product — and print its summary statistics.

``repro-kron stats``
    Load a bundle and print the Section VI-style summary table (vertices,
    edges, triangles) for the factors and the product, all from Kronecker
    formulas.  With ``--connect HOST:PORT`` it instead polls a running
    ``repro-kron serve`` instance's operational stats (request counts,
    latency percentiles, fleet rollup) — ``--watch N`` refreshes every N
    seconds (appending the flight recorder's most recent events under
    each refresh) and ``--prometheus`` emits the registry snapshot in
    Prometheus text format for scraping.

``repro-kron validate``
    Load a bundle and run the egonet spot-check validation (Fig. 7) and, when
    the product is small enough, the full formula-vs-direct validation.

``repro-kron stream``
    Load a bundle and spill the product's edge list in bounded-memory
    chunks — by default as a ``.npy`` shard directory with a JSON manifest
    (TSV stays available via ``--format tsv`` or a ``.tsv`` output path).
    With ``--ranks N`` the spill runs through the communication-free
    streaming rank pipeline: every rank folds its blocks into aggregates,
    the aggregates are allreduced, and the result is validated on the fly
    against the closed-form factor statistics — no full edge list is ever
    held in memory.  ``--async-io`` swaps in the threaded
    :class:`repro.store.AsyncShardSink` so shard writes overlap generation.
    ``--payload triangles,trussness`` widens the spilled shards with exact
    per-edge ground-truth columns (evaluated per block through the factored
    statistics), recorded by name in the manifest.

``repro-kron compact``
    Compact a per-block spill directory into a source-sorted store with a
    manifest v2 recording per-shard vertex ranges (``repro.store``); payload
    columns are carried through the external merge sort unchanged.

``repro-kron query``
    Serve degree / neighbor / egonet / edge-range queries from a compacted
    store, decoding only the shards whose manifest range overlaps the query
    — the product is never materialized.  ``--payload`` adds the stored
    per-edge ground truth to the answer and ``--json`` emits a single JSON
    object for scripts.  With ``--connect HOST:PORT`` the same queries run
    against a remote ``repro-kron serve`` instance instead of a local
    directory — identical output, because both surfaces share the
    :mod:`repro.serve.shaping` answer shapes.

``repro-kron serve``
    Put a compacted store behind a socket: the :mod:`repro.serve` asyncio
    front-end (one concurrent-safe :class:`~repro.store.ShardStore`, shard
    decodes on a bounded thread pool, concurrent scalar queries coalesced
    into batch calls).  Stops gracefully on Ctrl-C or a client ``shutdown``
    request, then prints the request/cache statistics.

``repro-kron profile``
    Arm a running server's continuous sampling profiler for a few
    seconds and print the folded-stack aggregate — per-role top stacks,
    or raw flamegraph-tool input lines with ``--collapsed``.  Against a
    router the answer is the whole fleet's profile, merged.

``repro-kron health``
    One-shot liveness check of a running server: uptime, profiler and
    flight-recorder state, open connections — and, against a router, a
    per-worker rollup that names any unreachable worker and its vertex
    range.  Exits 1 when the surface is degraded, so it drops straight
    into shell-level monitoring.

``repro-kron lint``
    Run the AST convention linter (:mod:`repro.lint`) over a file or
    directory — by default the installed ``repro`` package — and exit 1
    on any finding.  ``--json`` emits a machine-readable report (stable
    keys, sorted findings) for automation to diff; ``--rule NAME``
    restricts the run to one rule; ``--list-rules`` prints the registered
    rule set.  The tier-1 test suite runs the same engine and asserts
    zero findings, so a red ``lint`` is a red build.

Each sub-command is also usable programmatically through :func:`main`, which
accepts an ``argv`` list and returns the process exit code (the test-suite
drives it this way).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro import generators
from repro.analysis import format_table, graph_summary, kronecker_summary
from repro.core import (
    KroneckerGraph,
    ValidationAccumulator,
    kron_global_clustering,
    validate_egonets,
    validate_undirected_product,
)
from repro.graphs import (
    Graph,
    NpyShardSink,
    load_kronecker_bundle,
    save_kronecker_bundle,
    write_edge_shards,
)
from repro.graphs.io import read_shard_manifest
from repro.lint import LintEngine, all_rules, render_json, render_text
from repro.parallel import distributed_generate, stream_edges_to_file
from repro.serve import (
    PROTOCOL_VERSION,
    FleetStore,
    QueryClient,
    RangeRouter,
    ShardStoreServer,
    ThreadedServer,
    fleet_info_from_manifest,
)
from repro.serve.shaping import (
    range_shape,
    shape_degree,
    shape_egonet,
    shape_neighbors,
    shape_range,
)
from repro.store import (
    KNOWN_PAYLOAD_COLUMNS,
    AsyncShardSink,
    PayloadEvaluator,
    ShardStore,
    compact_shards,
    partition_manifest,
)

__all__ = ["main", "build_parser"]

#: Factor recipes available to ``repro-kron generate --factor-a/--factor-b``.
FACTOR_RECIPES = ("weblike", "ba", "er", "clique", "looped-clique", "hub-cycle", "tpa")


def _build_factor(recipe: str, size: int, seed: int) -> Graph:
    """Instantiate one factor from a recipe name."""
    if recipe == "weblike":
        return generators.webgraph_like(size, seed=seed)
    if recipe == "ba":
        return generators.barabasi_albert(size, 3, seed=seed)
    if recipe == "er":
        return generators.erdos_renyi(size, min(1.0, 8.0 / max(size, 1)), seed=seed)
    if recipe == "clique":
        return generators.complete_graph(size)
    if recipe == "looped-clique":
        return generators.looped_clique(size)
    if recipe == "hub-cycle":
        return generators.hub_cycle_graph()
    if recipe == "tpa":
        return generators.triangle_constrained_pa(size, seed=seed)
    raise ValueError(f"unknown factor recipe {recipe!r}; choose from {FACTOR_RECIPES}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro-kron`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-kron",
        description="Non-stochastic Kronecker graph generation with exact triangle statistics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="build factors and save a Kronecker bundle")
    gen.add_argument("bundle", type=Path, help="output .npz bundle path")
    gen.add_argument("--factor-a", choices=FACTOR_RECIPES, default="weblike")
    gen.add_argument("--factor-b", choices=FACTOR_RECIPES, default="weblike")
    gen.add_argument("--size-a", type=int, default=1000)
    gen.add_argument("--size-b", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--self-loops-b", action="store_true",
                     help="add a self loop at every vertex of factor B (B ← B + I)")
    gen.add_argument("--stream", type=Path, default=None, metavar="DIR",
                     help="also spill the product edge list to a .npy shard "
                          "directory (bounded-memory, never materialized)")

    stats = sub.add_parser(
        "stats",
        help="print the summary table for a bundle, or poll a running "
             "server's operational stats with --connect")
    stats.add_argument("bundle", type=Path, nargs="?", default=None,
                       help="Kronecker bundle (omit with --connect)")
    stats.add_argument("--connect", type=str, default=None, metavar="HOST:PORT",
                       help="show a running `repro-kron serve` instance's "
                            "operational stats instead of a bundle table")
    stats.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                       help="with --connect: re-poll every SECONDS until "
                            "interrupted")
    stats.add_argument("--prometheus", action="store_true",
                       help="with --connect: print the metrics registry in "
                            "Prometheus text format instead of the JSON "
                            "stats answer")
    stats.add_argument("--timeout", type=float, default=30.0,
                       help="socket timeout in seconds for --connect "
                            "(default 30)")

    val = sub.add_parser("validate", help="validate formulas against direct computation")
    val.add_argument("bundle", type=Path)
    val.add_argument("--egonets", type=int, default=9,
                     help="number of random egonet spot checks (default 9)")
    val.add_argument("--seed", type=int, default=0)
    val.add_argument("--full", action="store_true",
                     help="also materialize the product and compare every statistic "
                          "(only for small products)")
    val.add_argument("--max-nnz", type=int, default=20_000_000,
                     help="materialization guard for --full")

    stream = sub.add_parser(
        "stream",
        help="spill the product edge list in bounded-memory chunks "
             "(.npy shards by default, TSV opt-in)")
    stream.add_argument("bundle", type=Path)
    stream.add_argument("output", type=Path,
                        help="shard directory (default format) or .tsv file")
    stream.add_argument("--format", choices=("auto", "shards", "tsv"), default="auto",
                        help="spill format; 'auto' picks TSV for *.tsv/*.txt "
                             "outputs and .npy shards otherwise")
    stream.add_argument("--max-edges", type=int, default=None,
                        help="cap on edges written (single-rank spill only)")
    stream.add_argument("--block", type=int, default=1024,
                        help="A-entries per streamed block (memory bound)")
    stream.add_argument("--ranks", type=int, default=None, metavar="N",
                        help="run the streaming rank pipeline over N simulated "
                             "ranks, validating the allreduced aggregates "
                             "against the closed-form factor statistics")
    stream.add_argument("--processes", action="store_true",
                        help="with --ranks: fan the ranks out on a process pool")
    stream.add_argument("--async-io", action="store_true",
                        help="with --ranks: overlap shard writes with block "
                             "generation via a threaded writer sink "
                             "(in-process ranks only)")
    stream.add_argument("--payload", type=str, default=None, metavar="COLS",
                        help="comma-separated per-edge ground-truth columns "
                             "to carry in the spilled shards (from: "
                             "triangles, trussness); shards become "
                             "(m, 2+k) rows and the manifest records the "
                             "column names (.npy shard format only)")

    compact = sub.add_parser(
        "compact",
        help="merge a per-block spill into source-sorted shards with a "
             "manifest v2 recording per-shard vertex ranges")
    compact.add_argument("source", type=Path, help="spill directory to compact")
    compact.add_argument("destination", type=Path, help="output store directory")
    compact.add_argument("--target-edges", type=int, default=262_144,
                         help="edges per output shard (default 262144)")

    query = sub.add_parser(
        "query",
        help="answer vertex/range queries from a compacted shard store "
             "without materializing the product")
    query.add_argument("store", type=Path, nargs="?", default=None,
                       help="compacted store directory (omit with --connect)")
    query.add_argument("--connect", type=str, default=None, metavar="HOST:PORT",
                       help="query a running `repro-kron serve` instance "
                            "instead of a local store directory")
    query.add_argument("--binary", action="store_true",
                       help="fetch --range rows over the protocol-v2 binary "
                            "bulk plane (raw bytes, no JSON row lists); "
                            "requires --connect, output is identical")
    query.add_argument("--timeout", type=float, default=30.0,
                       help="socket timeout in seconds for --connect "
                            "(default 30; guards against a hung server)")
    what = query.add_mutually_exclusive_group(required=True)
    what.add_argument("--degree", type=int, metavar="V",
                      help="degree of product vertex V")
    what.add_argument("--neighbors", type=int, metavar="V",
                      help="sorted neighbour list of product vertex V")
    what.add_argument("--egonet", type=int, metavar="V",
                      help="egonet summary (size, centre degree, triangles) "
                           "of product vertex V")
    what.add_argument("--range", type=int, nargs=2, metavar=("LO", "HI"),
                      help="edges with source vertex in [LO, HI)")
    query.add_argument("--cache", type=int, default=4,
                       help="decoded shards kept in the LRU cache (default 4)")
    query.add_argument("--limit", type=int, default=20,
                       help="rows of output printed for list results (default 20)")
    query.add_argument("--payload", action="store_true",
                       help="include the store's per-edge payload columns "
                            "(triangle counts, trussness, ...) in the answer; "
                            "requires a payload-carrying store")
    query.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the query result as one JSON object on "
                            "stdout (for scripts)")

    serve = sub.add_parser(
        "serve",
        help="serve shard-store queries over a socket (asyncio front-end, "
             "one concurrent-safe store, length-prefixed JSON frames)")
    serve.add_argument("store", type=Path, help="compacted store directory")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port; 0 picks an ephemeral port and "
                            "prints it (default 0)")
    serve.add_argument("--cache", type=int, default=8,
                       help="decoded shards kept in the store's LRU "
                            "(default 8; shared by every connection)")
    serve.add_argument("--threads", type=int, default=4,
                       help="bounded pool shard decodes run on (default 4)")
    serve.add_argument("--fleet", type=int, default=None, metavar="N",
                       help="partition the store into N contiguous "
                            "vertex-range slices, spawn one in-process "
                            "worker per slice replica, and serve a range "
                            "router that fans batch queries out and merges "
                            "the answers (same protocol, byte-equal "
                            "answers)")
    serve.add_argument("--replicas", type=int, default=1, metavar="R",
                       help="workers per slice with --fleet (default 1); "
                            "a failed worker call is retried once against "
                            "the next replica")
    serve.add_argument("--slow-log", type=Path, default=None, metavar="FILE",
                       help="append one JSON line per slow query to FILE "
                            "(op, elapsed_us, ok, trace id)")
    serve.add_argument("--slow-ms", type=float, default=None, metavar="MS",
                       help="slow-query threshold in milliseconds "
                            "(default 100 when --slow-log is set)")

    profile = sub.add_parser(
        "profile",
        help="sample a running server's threads for a few seconds and "
             "print the folded-stack profile (fleet-merged on a router)")
    profile.add_argument("--connect", type=str, required=True,
                         metavar="HOST:PORT",
                         help="the `repro-kron serve` instance to profile")
    profile.add_argument("--seconds", type=float, default=5.0, metavar="N",
                         help="sampling window length (default 5)")
    profile.add_argument("--hz", type=float, default=None,
                         help="sampling rate in samples/s (default: the "
                              "server's configured rate)")
    profile.add_argument("--collapsed", action="store_true",
                         help="print raw folded-stack lines "
                              "(`role;mod:fn;... count`) for flamegraph "
                              "tools instead of the per-role summary")
    profile.add_argument("--timeout", type=float, default=30.0,
                         help="socket timeout in seconds (default 30)")

    health = sub.add_parser(
        "health",
        help="print a running server's liveness surface (uptime, profiler "
             "and flight-recorder state; per-worker rollup on a router); "
             "exit 1 when degraded")
    health.add_argument("--connect", type=str, required=True,
                        metavar="HOST:PORT",
                        help="the `repro-kron serve` instance to check")
    health.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the raw health answer as JSON")
    health.add_argument("--timeout", type=float, default=30.0,
                        help="socket timeout in seconds (default 30)")

    lint = sub.add_parser(
        "lint",
        help="run the AST convention linter over the source tree "
             "(exit 1 on any finding)")
    lint.add_argument("path", type=Path, nargs="?", default=None,
                      help="file or directory to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the findings as one JSON object on stdout "
                           "(stable keys, sorted findings — diffable by "
                           "automation)")
    lint.add_argument("--rule", action="append", default=None, metavar="NAME",
                      help="run only the named rule (repeatable); "
                           "see --list-rules")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")

    return parser


def _load_undirected_bundle(path: Path):
    factor_a, factor_b, meta = load_kronecker_bundle(path)
    if not isinstance(factor_a, Graph) or not isinstance(factor_b, Graph):
        raise SystemExit("this command expects an undirected factor bundle")
    return factor_a, factor_b, meta


def _cmd_generate(args: argparse.Namespace) -> int:
    factor_a = _build_factor(args.factor_a, args.size_a, args.seed)
    factor_b = _build_factor(args.factor_b, args.size_b, args.seed + 1)
    if args.self_loops_b:
        factor_b = factor_b.with_self_loops()
    save_kronecker_bundle(args.bundle, factor_a, factor_b,
                          metadata={"cli": "generate", "seed": args.seed})
    product = KroneckerGraph(factor_a, factor_b)
    print(f"wrote {args.bundle} ({args.bundle.stat().st_size:,} bytes)")
    print(f"factors: A = {factor_a}, B = {factor_b}")
    print(f"product: {product.n_vertices:,} vertices, {product.n_edges:,} edges")
    if args.stream is not None:
        written = write_edge_shards(product, args.stream,
                                    metadata={"cli": "generate", "seed": args.seed})
        print(f"streamed {written:,} edges to {args.stream} (.npy shards)")
    return 0


def _format_event(event: dict) -> str:
    """One flight-recorder event as a compact console line."""
    ts = time.strftime("%H:%M:%S",
                       time.localtime(event.get("ts_us", 0) / 1e6))
    extras = " ".join(
        f"{key}={value}" for key, value in sorted(event.items())
        if key not in ("kind", "ts_us", "seq"))
    return f"  {ts} {event.get('kind', '?')} {extras}".rstrip()


def _stats_remote(args: argparse.Namespace) -> int:
    """Poll a running server's operational surface (the ``stats`` op, or
    the ``metrics`` op's Prometheus rendering with ``--prometheus``).
    Watch mode appends a recent-events pane under each refresh — the
    flight recorder's newest entries, fleet-interleaved on a router."""
    with QueryClient.from_address(args.connect,
                                  timeout=args.timeout) as client:
        try:
            while True:
                if args.prometheus:
                    print(client.metrics()["prometheus"], end="", flush=True)
                else:
                    print(json.dumps(client.request("stats"),
                                     indent=2, sort_keys=True), flush=True)
                if args.watch is None:
                    return 0
                events = client.events(limit=8)["events"]
                if events:
                    print("recent events:", flush=True)
                    for event in events:
                        print(_format_event(event), flush=True)
                time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if (args.bundle is None) == (args.connect is None):
        raise SystemExit(
            "stats needs exactly one of a bundle path or --connect HOST:PORT")
    if args.connect is not None:
        return _stats_remote(args)
    factor_a, factor_b, _ = _load_undirected_bundle(args.bundle)
    rows = [
        graph_summary(factor_a, name="A"),
        graph_summary(factor_b, name="B"),
        kronecker_summary(factor_a, factor_b, name="A ⊗ B"),
    ]
    print(format_table(rows))
    print(f"\nglobal clustering coefficient of A ⊗ B: "
          f"{kron_global_clustering(factor_a, factor_b):.6f}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    factor_a, factor_b, _ = _load_undirected_bundle(args.bundle)
    report = validate_egonets(factor_a, factor_b, n_samples=args.egonets, seed=args.seed)
    print(report.summary())
    exit_code = 0 if report.passed else 1
    if args.full:
        full = validate_undirected_product(factor_a, factor_b, max_nnz=args.max_nnz)
        print()
        print(full.summary())
        exit_code = exit_code or (0 if full.passed else 1)
    return exit_code


def _resolve_stream_format(args: argparse.Namespace) -> str:
    if args.format != "auto":
        return args.format
    return "tsv" if args.output.suffix in (".tsv", ".txt") else "shards"


def _parse_payload_columns(spec: Optional[str]) -> Tuple[str, ...]:
    """Split and validate ``--payload`` *before* any sink touches the output
    directory — a typo'd column name must not cost the user an existing
    spill (constructing a sink clears the destination)."""
    if not spec:
        return ()
    columns = tuple(c.strip() for c in spec.split(",") if c.strip())
    unknown = [c for c in columns if c not in KNOWN_PAYLOAD_COLUMNS]
    if unknown:
        raise SystemExit(
            f"unknown payload column(s) {', '.join(unknown)}; "
            f"choose from: {', '.join(KNOWN_PAYLOAD_COLUMNS)}")
    return columns


def _cmd_stream(args: argparse.Namespace) -> int:
    factor_a, factor_b, _ = _load_undirected_bundle(args.bundle)
    product = KroneckerGraph(factor_a, factor_b)
    fmt = _resolve_stream_format(args)
    payload_columns = _parse_payload_columns(args.payload)
    if args.processes and args.ranks is None:
        raise SystemExit("--processes requires --ranks")

    if args.async_io and args.ranks is None:
        raise SystemExit("--async-io requires --ranks")
    if args.async_io and args.processes:
        raise SystemExit("--async-io runs in-process ranks only; drop "
                         "--processes (the pool already overlaps I/O)")
    if payload_columns and fmt == "tsv":
        raise SystemExit("--payload requires the .npy shard format "
                         "(payload columns live in the shard rows)")

    if args.ranks is not None:
        if fmt == "tsv":
            raise SystemExit("--ranks spills .npy shards; TSV is single-rank only")
        if args.max_edges is not None:
            raise SystemExit("--max-edges applies to single-rank spills only")
        sink_cls = AsyncShardSink if args.async_io else NpyShardSink
        sink = sink_cls(args.output, name=product.name,
                        n_vertices=product.n_vertices,
                        payload_columns=payload_columns)
        result = distributed_generate(
            factor_a, factor_b, args.ranks,
            streaming=True, a_edges_per_block=args.block,
            sink=sink, use_processes=args.processes,
            payload_columns=payload_columns,
        )
        print(f"streamed {result.n_edges:,} edges over {args.ranks} ranks "
              f"to {args.output} (.npy shards)")
        if payload_columns:
            print(f"payload columns: {', '.join(payload_columns)} "
                  "(exact per-edge ground truth, evaluated per block)")
        print(f"peak block: {result.max_block_edges:,} edges "
              f"(bound {args.block * factor_b.nnz:,})")
        if args.async_io:
            print(f"async writer: {sink.blocks_written:,} blocks, "
                  f"{sink.writer_busy_s * 1e3:.1f} ms of I/O overlapped "
                  f"({sink.producer_wait_s * 1e3:.1f} ms back-pressure)")
        report = ValidationAccumulator(factor_a, factor_b,
                                       stats=result.stats).validate(result.total)
        print(report.summary())
        return 0 if report.passed else 1

    if fmt == "tsv":
        written = stream_edges_to_file(product, args.output,
                                       a_edges_per_block=args.block,
                                       max_edges=args.max_edges)
    else:
        evaluator = PayloadEvaluator.from_factors(
            factor_a, factor_b, payload_columns) if payload_columns else None
        written = write_edge_shards(product, args.output,
                                    a_edges_per_block=args.block,
                                    max_edges=args.max_edges,
                                    payload=evaluator)
        if payload_columns:
            print(f"payload columns: {', '.join(payload_columns)}")
    print(f"wrote {written:,} edges to {args.output} ({fmt})")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    manifest = compact_shards(args.source, args.destination,
                              target_shard_edges=args.target_edges,
                              metadata={"cli": "compact"})
    n_src = manifest["metadata"]["compaction"]["source_shards"]
    print(f"compacted {n_src} spill shards ({manifest['total_edges']:,} edges) "
          f"into {len(manifest['shards'])} source-sorted shards at {args.destination}")
    if manifest["shards"]:
        lo = manifest["shards"][0]["src_min"]
        hi = manifest["shards"][-1]["src_max"]
        print(f"manifest v2: per-shard vertex ranges cover [{lo}, {hi}] "
              f"of {manifest['n_vertices']:,} product vertices")
    return 0


def _wire_request(args: argparse.Namespace) -> Tuple[str, dict]:
    """Map the parsed ``query`` flags to a wire (op, args) pair.

    The shapes come back identical to the local path because the server
    answers through the same :mod:`repro.serve.shaping` helpers the local
    branch calls directly.
    """
    if args.degree is not None:
        return "degree", {"vertex": args.degree}
    if args.neighbors is not None:
        return "neighbors", {"vertex": args.neighbors,
                             "with_payload": args.payload}
    if args.egonet is not None:
        return "egonet", {"vertex": args.egonet, "with_payload": args.payload}
    lo, hi = args.range
    return "edges_in_range", {"lo": lo, "hi": hi,
                              "with_payload": args.payload,
                              "limit": args.limit}


def _print_query_text(result: dict, limit: int) -> None:
    kind = result["query"]
    if kind == "degree":
        print(f"degree({result['vertex']}) = {result['degree']}")
    elif kind == "neighbors":
        nbrs = result["neighbors"]
        payload = result.get("payload")
        if payload:
            names = list(payload)
            print(f"neighbors({result['vertex']}) with "
                  f"[{', '.join(names)}] ({result['count']} vertices):")
            for row_index, q in enumerate(nbrs[:limit]):
                values = ", ".join(f"{name}={payload[name][row_index]}"
                                   for name in names)
                print(f"  {q}\t{values}")
            if len(nbrs) > limit:
                print(f"  ... ({len(nbrs) - limit} more)")
        else:
            shown = ", ".join(map(str, nbrs[:limit]))
            suffix = ", ..." if len(nbrs) > limit else ""
            print(f"neighbors({result['vertex']}) = [{shown}{suffix}] "
                  f"({result['count']} vertices)")
    elif kind == "egonet":
        print(f"egonet({result['vertex']}): {result['n_vertices']} vertices, "
              f"centre degree {result['centre_degree']}, "
              f"{result['triangles_at_centre']} triangles at the centre")
        if "payload_totals" in result:
            totals = ", ".join(f"{name} total {value}"
                               for name, value in result["payload_totals"].items())
            print(f"  induced edges: {result['n_induced_edges']} ({totals})")
    else:
        print(f"edges_in_range({result['lo']}, {result['hi']}) = "
              f"{result['n_edges']:,} edges")
        if len(result["columns"]) > 2:
            print(f"  columns: {chr(9).join(result['columns'])}")
        for row in result["edges"]:
            print("  " + "\t".join(map(str, row)))
        if result["n_edges"] > len(result["edges"]):
            print(f"  ... ({result['n_edges'] - len(result['edges']):,} more)")


def _no_payload_exit(source) -> SystemExit:
    return SystemExit(
        f"{source} carries no payload columns; re-run the spill with "
        "`stream --payload ...` and recompact to serve per-edge ground "
        "truth")


def _query_local(args: argparse.Namespace) -> dict:
    store = ShardStore(args.store, cache_shards=args.cache)
    if args.payload and not store.payload_columns:
        raise _no_payload_exit(args.store)
    if args.degree is not None:
        result = shape_degree(store, args.degree)
    elif args.neighbors is not None:
        result = shape_neighbors(store, args.neighbors,
                                 with_payload=args.payload)
    elif args.egonet is not None:
        result = shape_egonet(store, args.egonet, with_payload=args.payload)
    else:
        lo, hi = args.range
        result = shape_range(store, lo, hi, with_payload=args.payload,
                             limit=args.limit)
    result["store"] = {
        "n_shards": store.n_shards,
        # Counters of a store opened for this one query: its decode cost.
        "scope": "query",
        "shard_reads": store.shard_reads,
        "cache_hits": store.cache_hits,
        "payload_columns": list(store.payload_columns),
    }
    return result


def _query_remote(args: argparse.Namespace) -> dict:
    with QueryClient.from_address(args.connect,
                                  timeout=args.timeout) as client:
        info = client.hello()["store"]
        if args.payload and not info["payload_columns"]:
            raise _no_payload_exit(args.connect)
        if args.binary:
            # Bulk plane: fetch the raw rows, then assemble the exact
            # display shape the JSON plane would have produced — shared
            # range_shape() is the one definition of that shape.
            lo, hi = args.range
            rows = client.edges_in_range(lo, hi, with_payload=args.payload,
                                         binary=True)
            columns = ["src", "dst"]
            if args.payload:
                columns += list(info["payload_columns"])
            result = range_shape(lo, hi, rows, columns, limit=args.limit)
        else:
            op, wire_args = _wire_request(args)
            result = client.request(op, wire_args)
        counters = client.stats()["store"]
    result["store"] = {
        "n_shards": counters["n_shards"],
        # Cumulative totals across every client since the server started —
        # NOT this query's decode cost (scripts must check "scope").
        "scope": "server-lifetime",
        "shard_reads": counters["shard_reads"],
        "cache_hits": counters["cache_hits"],
        "payload_columns": list(info["payload_columns"]),
    }
    return result


def _cmd_query(args: argparse.Namespace) -> int:
    if (args.store is None) == (args.connect is None):
        raise SystemExit(
            "query needs exactly one of a store directory or --connect "
            "HOST:PORT")
    if args.binary and (args.connect is None or args.range is None):
        raise SystemExit(
            "--binary is the wire bulk plane: it requires --connect and "
            "--range")
    result = _query_remote(args) if args.connect else _query_local(args)
    if args.as_json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        _print_query_text(result, args.limit)
        counters = result["store"]
        if args.connect:
            # Remote counters are server-lifetime totals across every
            # client, not this query's decode cost.
            print(f"server totals: {counters['shard_reads']} shard reads, "
                  f"{counters['cache_hits']} cache hits over "
                  f"{counters['n_shards']} shards")
        else:
            print(f"decoded {counters['shard_reads']} of "
                  f"{counters['n_shards']} shards "
                  f"({counters['cache_hits']} cache hits)")
    return 0


def _slow_log_kwargs(args: argparse.Namespace) -> dict:
    """Server slow-query keyword arguments from ``--slow-log``/``--slow-ms``."""
    kwargs = {}
    if args.slow_log is not None:
        kwargs["slow_query_log"] = args.slow_log
    if args.slow_ms is not None:
        kwargs["slow_query_us"] = int(args.slow_ms * 1000)
    return kwargs


def _serve_fleet(args: argparse.Namespace) -> int:
    if args.fleet < 1:
        raise SystemExit("--fleet needs at least 1 worker")
    if args.replicas < 1:
        raise SystemExit("--replicas needs at least 1 worker per slice")
    slices = partition_manifest(args.store, n_slices=args.fleet)
    info = fleet_info_from_manifest(read_shard_manifest(args.store))
    workers: List[ThreadedServer] = []
    fleet = None
    try:
        spec = []
        for entry in slices:
            addresses = []
            for _ in range(args.replicas):
                worker = ThreadedServer(entry["directory"],
                                        cache_shards=args.cache,
                                        decode_threads=args.threads).start()
                workers.append(worker)
                addresses.append(worker.address)
            spec.append({"src_lo": entry["src_lo"],
                         "src_hi": entry["src_hi"],
                         "addresses": addresses})
        fleet = FleetStore(spec, info)
        router = RangeRouter(fleet, host=args.host, port=args.port,
                             decode_threads=args.threads,
                             **_slow_log_kwargs(args))

        async def _run() -> None:
            await router.start()
            print(f"serving {args.store} on {router.host}:{router.port} "
                  f"(fleet of {args.fleet} slice(s) x {args.replicas} "
                  f"replica(s), {info['n_shards']} shards, "
                  f"{info['total_edges']:,} edges, "
                  f"protocol v{PROTOCOL_VERSION} with binary bulk frames)",
                  flush=True)
            await router.serve_until_stopped()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            print("\ninterrupted; router stopped")
        # Roll the final numbers up while the workers still answer.
        stats = router.stats()
        served = sum(stats["server"]["requests"].values())
        counters = stats["store"]
        print(f"served {served:,} requests over "
              f"{stats['server']['connections_total']} connections via "
              f"{stats['fleet']['workers']} workers; "
              f"{counters['shard_reads']} shard reads, "
              f"{counters['cache_hits']} cache hits")
    finally:
        if fleet is not None:
            fleet.close()
        for worker in workers:
            worker.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.fleet is not None:
        return _serve_fleet(args)
    store = ShardStore(args.store, cache_shards=args.cache)
    server = ShardStoreServer(store, host=args.host, port=args.port,
                              decode_threads=args.threads,
                              **_slow_log_kwargs(args))

    async def _run() -> None:
        await server.start()
        print(f"serving {args.store} on {server.host}:{server.port} "
              f"({store.n_shards} shards, {store.total_edges:,} edges, "
              f"cache {args.cache}, {args.threads} decode threads, "
              f"protocol v{PROTOCOL_VERSION} with binary bulk frames)",
              flush=True)
        # serve_until_stopped tears down gracefully even when Ctrl-C
        # cancels it, so the stats below are final either way.
        await server.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\ninterrupted; server stopped")
    stats = server.stats()
    served = sum(stats["server"]["requests"].values())
    counters = stats["store"]
    print(f"served {served:,} requests over "
          f"{stats['server']['connections_total']} connections; "
          f"{counters['shard_reads']} shard reads, "
          f"{counters['cache_hits']} cache hits")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Arm the server's sampling profiler for a window, then print the
    aggregate — per-role top stacks, or raw folded-stack lines with
    ``--collapsed``.  A router answers fleet-merged."""
    if args.seconds <= 0:
        raise SystemExit("--seconds must be > 0")
    with QueryClient.from_address(args.connect,
                                  timeout=args.timeout) as client:
        client.profile("reset")
        client.profile("start", hz=args.hz)
        try:
            time.sleep(args.seconds)
        finally:
            answer = client.profile("stop", collapsed=True)
    if args.collapsed:
        print(answer["collapsed"], end="")
        return 0
    profile = answer["profile"]
    merged = (f" across {answer['workers']} workers + router"
              if "workers" in answer else "")
    print(f"{answer['hz']:g} Hz x {args.seconds:g} s on {args.connect}: "
          f"{profile['samples']} samples{merged}")
    for role, counts in sorted(profile["stacks"].items()):
        total = sum(counts.values())
        print(f"{role} ({total} samples):")
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for stack, count in ranked[:5]:
            print(f"  {count:6d}  {stack}")
        if len(ranked) > 5:
            print(f"          ... ({len(ranked) - 5} more stacks)")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    """Print the ``health`` answer; exit 1 when the surface is degraded
    (a router reports any unreachable worker and its vertex range)."""
    with QueryClient.from_address(args.connect,
                                  timeout=args.timeout) as client:
        health = client.health()
    degraded = health.get("status") != "ok"
    if args.as_json:
        print(json.dumps(health, indent=2, sort_keys=True))
        return 1 if degraded else 0
    profiler = health["profiler"]
    recorder = health["events"]
    print(f"{args.connect}: {health['status']} "
          f"(up {health['uptime_s']:g} s, "
          f"{health.get('connections_open', 0)} connection(s) open)")
    print(f"  profiler: {'running' if profiler['running'] else 'stopped'} "
          f"at {profiler['hz']:g} Hz, {profiler['samples']} samples")
    print(f"  events: {recorder['recorded']}/{recorder['max_events']} "
          f"recorded, {recorder['dropped']} dropped; "
          f"{health['traces']} trace(s) retained")
    for report in health.get("workers", ()):
        status = "ok" if report.get("ok") else f"DOWN ({report['error']})"
        print(f"  worker {report['worker']} "
              f"[{report['src_lo']}, {report['src_hi']}): {status}")
    return 1 if degraded else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0
    if args.rule:
        by_name = {rule.name: rule for rule in rules}
        unknown = [name for name in args.rule if name not in by_name]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}; available: "
                  f"{', '.join(sorted(by_name))}", file=sys.stderr)
            return 2
        rules = [by_name[name] for name in args.rule]
    target = args.path if args.path is not None else Path(__file__).parent
    report = LintEngine(rules).run(target)
    print(render_json(report) if args.as_json else render_text(report))
    return 0 if report.ok else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "validate": _cmd_validate,
    "stream": _cmd_stream,
    "compact": _cmd_compact,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "profile": _cmd_profile,
    "health": _cmd_health,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
