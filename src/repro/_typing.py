"""Shared type aliases used across the :mod:`repro` package.

The library standardizes on ``scipy.sparse.csr_array`` / ``csr_matrix`` for
adjacency storage and on ``numpy.ndarray`` for per-vertex statistic vectors.
These aliases keep signatures short and give a single place to evolve the
types (e.g. if sparse arrays replace sparse matrices wholesale).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

#: Any SciPy sparse matrix type accepted as an adjacency-matrix input.
SparseMatrix = Union[sp.spmatrix, sp.sparray]

#: Dense or sparse matrix input accepted by constructors.
MatrixLike = Union[np.ndarray, SparseMatrix, Sequence[Sequence[float]]]

#: An edge as a pair of integer vertex ids (0-based everywhere in this library).
Edge = Tuple[int, int]

#: An iterable of edges.
EdgeIterable = Iterable[Edge]

#: Vertex labels are small non-negative integers ``0 .. n_labels-1``.
LabelArray = np.ndarray

__all__ = ["SparseMatrix", "MatrixLike", "Edge", "EdgeIterable", "LabelArray"]
