"""Batched CSR point-lookup kernels.

These primitives replace scalar ``scipy.sparse`` ``__getitem__`` calls —
which allocate a 1×1 sparse temporary per query — with vectorized binary
searches over the raw ``indptr``/``indices`` arrays.  They are the substrate
of every batched ground-truth evaluator in :mod:`repro.core` and of the
rank-parallel generator in :mod:`repro.parallel`.

All kernels treat absent entries as 0 (the adjacency-matrix convention) and
require *canonical* CSR input (sorted indices); non-canonical or non-CSR
matrices are converted once on entry.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

__all__ = ["csr_gather", "csr_has_entry", "CsrGatherer"]

IndexLike = Union[int, np.ndarray]


def _sorted_has_duplicates(csr: sp.csr_matrix) -> bool:
    """Whether a sorted-indices CSR stores the same ``(row, col)`` twice."""
    if csr.nnz < 2:
        return False
    same = csr.indices[1:] == csr.indices[:-1]
    row_starts = csr.indptr[1:-1]
    row_starts = row_starts[(row_starts > 0) & (row_starts < csr.nnz)]
    same[row_starts - 1] = False  # adjacent pair spans a row boundary
    return bool(same.any())


def _as_canonical_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Coerce to canonical CSR (sorted indices, duplicates summed).

    Copies only when actual work is needed: scipy leaves the canonical flag
    unset on many operation results that are in fact canonical (e.g. sparse
    matmuls), so a verified-clean matrix just gets its flag set — caching the
    verdict on the object so repeated gathers skip the scan.
    """
    if not sp.issparse(matrix):
        raise TypeError(f"csr_gather expects a scipy sparse matrix, got {type(matrix)!r}")
    csr = matrix if isinstance(matrix, sp.csr_matrix) else sp.csr_matrix(matrix)
    if csr.has_canonical_format:
        return csr
    if csr.has_sorted_indices and not _sorted_has_duplicates(csr):
        csr.has_canonical_format = True
        return csr
    csr = csr.copy()
    csr.sum_duplicates()  # sorts indices and merges duplicate entries
    return csr


def _rowwise_lower_bound(
    indices: np.ndarray, starts: np.ndarray, stops: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Vectorized per-row ``searchsorted``: first position in each row slice
    ``indices[starts[t]:stops[t]]`` that is ``>= cols[t]``.

    A classic branch-free binary search run simultaneously for all queries;
    the Python ``while`` executes only ``O(log max_row_nnz)`` iterations,
    never once per query.
    """
    lo = starts.astype(np.int64, copy=True)
    hi = stops.astype(np.int64, copy=True)
    active = lo < hi
    while active.any():
        mid = (lo + hi) >> 1
        probe = np.zeros(lo.shape, dtype=bool)
        probe[active] = indices[mid[active]] < cols[active]
        go_right = active & probe
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~probe, mid, hi)
        active = lo < hi
    return lo


def _validate_indices(rows_flat: np.ndarray, cols_flat: np.ndarray, shape) -> None:
    """Raise ``IndexError`` for any index outside ``[0, n)`` (no negative wrap)."""
    n_rows, n_cols = shape
    if rows_flat.size:
        if rows_flat.min() < 0 or rows_flat.max() >= n_rows:
            raise IndexError(f"row index out of range for shape {tuple(shape)}")
        if cols_flat.min() < 0 or cols_flat.max() >= n_cols:
            raise IndexError(f"column index out of range for shape {tuple(shape)}")


def csr_gather(matrix: sp.spmatrix, rows: IndexLike, cols: IndexLike) -> Union[int, float, np.ndarray]:
    """Vectorized point lookup ``matrix[rows[t], cols[t]]`` with zeros for absent entries.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix; converted to canonical CSR once.
    rows, cols:
        Integer scalars or arrays (broadcast against each other).  Out-of-range
        indices raise ``IndexError``.

    Returns
    -------
    An array of ``matrix.dtype`` with the broadcast shape of ``rows``/``cols``;
    when both inputs are Python scalars, a Python scalar.

    Notes
    -----
    Runs one simultaneous binary search over the CSR ``indices`` within each
    queried row slice — ``O(q · log max_row_nnz)`` total work with no
    per-query Python loop and no sparse temporaries.  This is the batched
    sibling of scalar ``matrix[i, j]`` and the kernel behind
    ``KroneckerTriangleStats.edge_values``.
    """
    csr = _as_canonical_csr(matrix)
    scalar_input = np.isscalar(rows) and np.isscalar(cols)
    rows_arr = np.asarray(rows, dtype=np.int64)
    cols_arr = np.asarray(cols, dtype=np.int64)
    shape = np.broadcast_shapes(rows_arr.shape, cols_arr.shape)
    rows_flat = np.broadcast_to(rows_arr, shape).ravel()
    cols_flat = np.broadcast_to(cols_arr, shape).ravel()

    _validate_indices(rows_flat, cols_flat, csr.shape)
    out = np.zeros(rows_flat.shape, dtype=csr.dtype)
    if csr.nnz and rows_flat.size:
        starts = csr.indptr[rows_flat]
        stops = csr.indptr[rows_flat + 1]
        pos = _rowwise_lower_bound(csr.indices, starts, stops, cols_flat)
        in_row = pos < stops
        safe = np.where(in_row, pos, 0)
        hit = in_row & (csr.indices[safe] == cols_flat)
        out[hit] = csr.data[pos[hit]]
    out = out.reshape(shape)
    if scalar_input:
        return out.item()
    return out


def csr_has_entry(matrix: sp.csr_matrix, row: int, col: int) -> bool:
    """Whether ``matrix[row, col]`` is a stored entry — no sparse temporary.

    The scalar fast path used by ``Graph.has_edge`` and the
    ``KroneckerGraph`` self-loop probes; a single ``searchsorted`` on the
    row's index slice.  *matrix* must be canonical CSR (sorted indices).
    Indices must be in ``[0, n)`` — negative indices raise ``IndexError``
    rather than silently wrapping or answering ``False``.
    """
    n_rows, n_cols = matrix.shape
    if not (0 <= row < n_rows and 0 <= col < n_cols):
        raise IndexError(f"index ({row}, {col}) out of range for shape {matrix.shape}")
    start, stop = int(matrix.indptr[row]), int(matrix.indptr[row + 1])
    if start == stop:
        return False
    pos = int(np.searchsorted(matrix.indices[start:stop], col))
    return pos < stop - start and int(matrix.indices[start + pos]) == int(col)


class CsrGatherer:
    """Reusable batched point lookup on one CSR matrix.

    Precomputes the globally sorted row-major key array
    ``key = row · n_cols + col`` over the stored entries, after which every
    batch of queries is a single ``np.searchsorted`` — amortizing the
    ``O(nnz)`` setup across many gathers on the same matrix (e.g. one factor
    component queried by every rank of a generation run).
    """

    __slots__ = ("_csr", "_keys", "_n_cols")

    def __init__(self, matrix: sp.spmatrix):
        self._csr = _as_canonical_csr(matrix)
        n_rows, n_cols = self._csr.shape
        row_of_entry = np.repeat(
            np.arange(n_rows, dtype=np.int64), np.diff(self._csr.indptr)
        )
        # Row-major keys of a sorted-indices CSR are globally sorted.
        self._keys = row_of_entry * np.int64(n_cols) + self._csr.indices.astype(np.int64)
        self._n_cols = np.int64(n_cols)

    @property
    def matrix(self) -> sp.csr_matrix:
        """The canonical CSR matrix the gatherer answers queries for."""
        return self._csr

    def gather(self, rows: IndexLike, cols: IndexLike) -> np.ndarray:
        """``matrix[rows[t], cols[t]]`` as an array (0 for absent entries).

        Out-of-range indices raise ``IndexError`` (they would otherwise alias
        a different entry through the row-major key arithmetic).
        """
        rows_arr = np.asarray(rows, dtype=np.int64)
        cols_arr = np.asarray(cols, dtype=np.int64)
        shape = np.broadcast_shapes(rows_arr.shape, cols_arr.shape)
        rows_flat = np.broadcast_to(rows_arr, shape).ravel()
        cols_flat = np.broadcast_to(cols_arr, shape).ravel()
        _validate_indices(rows_flat, cols_flat, self._csr.shape)
        queries = rows_flat * self._n_cols + cols_flat
        out = np.zeros(queries.shape, dtype=self._csr.dtype)
        if self._keys.size and queries.size:
            pos = np.searchsorted(self._keys, queries)
            in_range = pos < self._keys.size
            safe = np.where(in_range, pos, 0)
            hit = in_range & (self._keys[safe] == queries)
            out[hit] = self._csr.data[pos[hit]]
        return out.reshape(shape)
