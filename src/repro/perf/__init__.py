"""Vectorized kernel layer for batch-oriented ground-truth evaluation.

The paper's scaling story rests on every ground-truth statistic of
``C = A ⊗ B`` being a small Kronecker combination of factor-local
quantities; evaluating those combinations one product edge at a time with
scalar ``scipy`` indexing turns an O(1)-per-edge formula into a
Python-interpreter-bound loop.  This subpackage provides the batch
primitives the formula modules build on:

* :func:`~repro.perf.kernels.csr_gather` — vectorized point lookup
  ``M[rows[t], cols[t]]`` on a CSR matrix (binary search over
  ``indptr``/``indices``, no per-query Python loop);
* :func:`~repro.perf.kernels.csr_has_entry` — scalar membership probe
  without allocating a sparse temporary;
* :class:`~repro.perf.kernels.CsrGatherer` — a reusable gatherer that
  caches the row expansion of one matrix across many batched gathers.

Conventions (recorded in ROADMAP.md "Performance notes"): hot-path APIs are
batch-first — they accept index *arrays* and return value arrays — and no
per-edge Python loop is permitted between a generator and its statistics.
"""

from repro.perf.kernels import CsrGatherer, csr_gather, csr_has_entry

__all__ = ["csr_gather", "csr_has_entry", "CsrGatherer"]
