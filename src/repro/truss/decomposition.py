"""Truss decomposition by iterative edge peeling (Definition 7, Section III.D).

A ``κ``-truss of an undirected graph is a maximal one-component subgraph in
which every edge participates in at least ``κ - 2`` triangles *within the
subgraph*; the truss decomposition is the nested family of edge sets
``T(3) ⊇ T(4) ⊇ …``.  The paper's reference algorithm (reproduced verbatim
here) repeatedly recomputes edge triangle participation and peels edges below
the current threshold; although simple, it is exact, and is the direct
baseline against which the Kronecker truss formula of Theorem 3 is validated.

The key summary statistic is the *trussness* of an edge — the largest ``κ``
for which the edge belongs to the ``κ``-truss.  Edges in no triangle get
trussness 2 (they are only in the trivial 2-truss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph, hadamard
from repro.triangles.linear_algebra import edge_triangles, strip_self_loops

__all__ = ["TrussDecomposition", "truss_decomposition", "k_truss", "edge_trussness"]


@dataclass(frozen=True)
class TrussDecomposition:
    """Result of a full truss decomposition.

    Attributes
    ----------
    trussness:
        Symmetric sparse matrix; entry ``(i, j)`` is the trussness of edge
        ``(i, j)`` (2 for edges in no triangle), 0 where no edge exists.
    max_truss:
        The largest ``κ`` with a non-empty ``κ``-truss (2 when the graph has
        no triangles, 0 when it has no edges).
    """

    trussness: sp.csr_matrix
    max_truss: int

    def edges_in_truss(self, k: int) -> np.ndarray:
        """Undirected edges (``u <= v``) belonging to the ``k``-truss ``T(k)``."""
        mask = sp.triu(self.trussness, k=0).tocoo()
        keep = mask.data >= k
        rows, cols = mask.row[keep], mask.col[keep]
        out = np.stack([rows, cols], axis=1).astype(np.int64)
        order = np.lexsort((out[:, 1], out[:, 0]))
        return out[order]

    def truss_sizes(self) -> Dict[int, int]:
        """Number of undirected edges in each ``κ``-truss for ``κ = 3 .. max_truss``."""
        return {k: self.edges_in_truss(k).shape[0] for k in range(3, self.max_truss + 1)}

    def edge_trussness(self, u: int, v: int) -> int:
        """Trussness of one edge (0 if the edge does not exist)."""
        return int(self.trussness[u, v])


def truss_decomposition(graph: Graph, *, max_k: Optional[int] = None) -> TrussDecomposition:
    """Run the paper's peeling algorithm and return the full decomposition.

    Parameters
    ----------
    graph:
        Undirected graph; self loops are ignored.
    max_k:
        Optional upper bound on ``κ`` (defaults to ``n_vertices``, the
        natural bound).
    """
    adj = strip_self_loops(graph.adjacency)
    n = adj.shape[0]
    limit = max_k if max_k is not None else max(3, n)

    # Trussness starts at 2 for every existing edge.
    trussness = adj.copy().astype(np.int64)
    trussness.data[:] = 2

    current = adj.copy()
    max_truss = 2 if adj.nnz else 0

    for k in range(3, limit + 1):
        # Peel edges with fewer than (k - 2) triangles until stable.
        while True:
            if current.nnz == 0:
                break
            delta = hadamard(current, current @ current)
            # Edges failing the threshold:
            coo = current.tocoo()
            tri_at = np.asarray(delta[coo.row, coo.col]).ravel()
            keep = tri_at >= (k - 2)
            if keep.all():
                break
            data = np.ones(int(keep.sum()), dtype=np.int64)
            current = sp.csr_matrix(
                (data, (coo.row[keep], coo.col[keep])), shape=(n, n)
            )
        if current.nnz == 0:
            break
        # Remaining edges are in the k-truss: bump their trussness to k.
        survivors = current.copy()
        survivors.data = np.full_like(survivors.data, k)
        trussness = trussness.maximum(survivors)
        max_truss = k

    trussness = sp.csr_matrix(trussness)
    trussness.sort_indices()
    return TrussDecomposition(trussness=trussness, max_truss=int(max_truss))


def k_truss(graph: Graph, k: int) -> Graph:
    """The ``k``-truss subgraph of *graph* (edges of trussness ``>= k``)."""
    if k < 3:
        return graph.without_self_loops()
    decomp = truss_decomposition(graph, max_k=k)
    mask = sp.csr_matrix(decomp.trussness >= k).astype(np.int64)
    adj = hadamard(strip_self_loops(graph.adjacency), mask)
    return Graph(adj, name=f"{graph.name}|{k}-truss" if graph.name else f"{k}-truss",
                 validate=False)


def edge_trussness(graph: Graph) -> sp.csr_matrix:
    """Convenience wrapper returning only the trussness matrix."""
    return truss_decomposition(graph).trussness
