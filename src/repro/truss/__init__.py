"""Truss decomposition substrate (direct peeling algorithm of Section III.D)."""

from repro.truss.decomposition import (
    TrussDecomposition,
    edge_trussness,
    k_truss,
    truss_decomposition,
)

__all__ = ["TrussDecomposition", "truss_decomposition", "k_truss", "edge_trussness"]
