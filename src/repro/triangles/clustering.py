"""Clustering coefficients derived from triangle participation.

The paper motivates local triangle statistics through their use in the local
clustering coefficient of a vertex (Watts-Strogatz) and of an edge, and in
the global transitivity ratio.  Each quantity here is a cheap post-processing
of the participation vectors/matrices produced either directly
(:mod:`repro.triangles`) or by the Kronecker formulas (:mod:`repro.core`) —
which is exactly how a generated benchmark graph would publish its
ground-truth clustering values.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.triangles.linear_algebra import (
    edge_triangles,
    strip_self_loops,
    total_triangles,
    total_wedges,
    vertex_triangles,
    wedge_counts,
)

__all__ = [
    "local_clustering_coefficients",
    "edge_clustering_coefficients",
    "global_clustering_coefficient",
    "average_clustering_coefficient",
]

MatrixOrGraph = Union[Graph, sp.spmatrix, np.ndarray]


def local_clustering_coefficients(
    graph: MatrixOrGraph,
    *,
    triangles: Optional[np.ndarray] = None,
    degrees: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-vertex clustering coefficient ``c_i = 2 t_i / (d_i (d_i - 1))``.

    Vertices of degree < 2 get coefficient 0.  Precomputed ``triangles`` /
    ``degrees`` vectors (e.g. from the Kronecker formulas) may be supplied to
    avoid recomputation.
    """
    if triangles is None:
        triangles = vertex_triangles(graph)
    if degrees is None:
        adj = graph.adjacency if isinstance(graph, Graph) else sp.csr_matrix(graph)
        adj = strip_self_loops(adj)
        degrees = np.asarray(adj.sum(axis=1)).ravel()
    triangles = np.asarray(triangles, dtype=np.float64)
    degrees = np.asarray(degrees, dtype=np.float64)
    denom = degrees * (degrees - 1.0)
    out = np.zeros_like(triangles, dtype=np.float64)
    mask = denom > 0
    out[mask] = 2.0 * triangles[mask] / denom[mask]
    return out


def edge_clustering_coefficients(
    graph: MatrixOrGraph,
    *,
    edge_triangle_matrix: Optional[sp.spmatrix] = None,
) -> sp.csr_matrix:
    """Per-edge clustering coefficient ``Δ_ij / (min(d_i, d_j) - 1)``.

    The denominator is the maximum number of triangles the edge could close;
    edges whose lighter endpoint has degree 1 get coefficient 0.
    """
    adj = graph.adjacency if isinstance(graph, Graph) else sp.csr_matrix(graph)
    adj = strip_self_loops(adj)
    delta = sp.csr_matrix(edge_triangle_matrix) if edge_triangle_matrix is not None \
        else edge_triangles(adj)
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    coo = adj.tocoo()
    cap = np.minimum(degrees[coo.row], degrees[coo.col]) - 1.0
    tri = np.asarray(sp.csr_matrix(delta)[coo.row, coo.col]).ravel()
    vals = np.zeros_like(tri, dtype=np.float64)
    mask = cap > 0
    vals[mask] = tri[mask] / cap[mask]
    return sp.csr_matrix((vals, (coo.row, coo.col)), shape=adj.shape)


def global_clustering_coefficient(graph: MatrixOrGraph) -> float:
    """Transitivity: ``3 τ / #wedges`` (0 for wedge-free graphs)."""
    wedges = total_wedges(graph)
    if wedges == 0:
        return 0.0
    return 3.0 * total_triangles(graph) / wedges


def average_clustering_coefficient(graph: MatrixOrGraph) -> float:
    """Mean of the per-vertex local clustering coefficients."""
    coeffs = local_clustering_coefficients(graph)
    return float(coeffs.mean()) if coeffs.size else 0.0
