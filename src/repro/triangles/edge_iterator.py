"""Degree-ordered edge-iterator (wedge-check) triangle counting.

This is the :math:`O(|E|^{3/2})` algorithm of Chiba–Nishizeki [10] the paper
uses to count triangles on the *factors*: orient every edge from the
lower-degree endpoint to the higher-degree endpoint (ties broken by id), then
for every vertex intersect the out-neighbour lists of the endpoints of each
out-edge.  Each triangle is found exactly once, and the number of wedge
checks performed is the quantity the paper reports ("7,734,429 wedge checks"
for the web-NotreDame factor).

The module returns per-vertex participation, per-edge participation, the
global count, and the wedge-check work counter so the complexity claims of
Section I can be benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.triangles.linear_algebra import strip_self_loops

__all__ = ["TriangleCensus", "count_triangles_edge_iterator"]


@dataclass(frozen=True)
class TriangleCensus:
    """Result of a degree-ordered triangle census.

    Attributes
    ----------
    total:
        Global triangle count ``τ``.
    per_vertex:
        Length-``n`` vector of triangle participation at each vertex.
    per_edge:
        Sparse symmetric matrix of triangle participation at each edge.
    wedge_checks:
        Number of neighbour-list intersections performed — the work measure
        used in the paper's complexity discussion.
    """

    total: int
    per_vertex: np.ndarray
    per_edge: sp.csr_matrix
    wedge_checks: int


def _degree_orientation(adj: sp.csr_matrix) -> sp.csr_matrix:
    """Orient each undirected edge from lower to higher (degree, id) endpoint."""
    n = adj.shape[0]
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    coo = adj.tocoo()
    rank = degrees * n + np.arange(n)  # total order: degree then vertex id
    keep = rank[coo.row] < rank[coo.col]
    data = np.ones(int(keep.sum()), dtype=np.int64)
    oriented = sp.csr_matrix((data, (coo.row[keep], coo.col[keep])), shape=adj.shape)
    oriented.sort_indices()
    return oriented


def count_triangles_edge_iterator(graph: Union[Graph, sp.spmatrix]) -> TriangleCensus:
    """Run the degree-ordered wedge-check census on an undirected graph.

    Self loops are ignored.  The per-vertex and per-edge outputs agree with
    the linear-algebra kernels of :mod:`repro.triangles.linear_algebra`; the
    census additionally reports the wedge-check counter.
    """
    adj = graph.adjacency if isinstance(graph, Graph) else sp.csr_matrix(graph)
    adj = strip_self_loops(adj)
    n = adj.shape[0]
    oriented = _degree_orientation(adj)
    indptr, indices = oriented.indptr, oriented.indices

    per_vertex = np.zeros(n, dtype=np.int64)
    edge_rows: list = []
    edge_cols: list = []
    wedge_checks = 0
    total = 0

    for u in range(n):
        u_out = indices[indptr[u]:indptr[u + 1]]
        if u_out.size == 0:
            continue
        for v in u_out:
            v_out = indices[indptr[v]:indptr[v + 1]]
            wedge_checks += 1
            if v_out.size == 0:
                continue
            common = np.intersect1d(u_out, v_out, assume_unique=True)
            c = common.size
            if c == 0:
                continue
            total += c
            per_vertex[u] += c
            per_vertex[v] += c
            per_vertex[common] += 1
            # Record each closed triangle's three edges for the per-edge matrix.
            edge_rows.extend([u] * c)
            edge_cols.extend([v] * c)
            edge_rows.extend([u] * c)
            edge_cols.extend(common.tolist())
            edge_rows.extend([v] * c)
            edge_cols.extend(common.tolist())

    if edge_rows:
        rows = np.asarray(edge_rows + edge_cols, dtype=np.int64)
        cols = np.asarray(edge_cols + edge_rows, dtype=np.int64)
        data = np.ones(rows.shape[0], dtype=np.int64)
        per_edge = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        per_edge.sum_duplicates()
    else:
        per_edge = sp.csr_matrix((n, n), dtype=np.int64)

    return TriangleCensus(
        total=int(total),
        per_vertex=per_vertex,
        per_edge=per_edge,
        wedge_checks=int(wedge_checks),
    )
