"""Linear-algebra triangle kernels (the ``A ∘ A²`` family).

The paper expresses triangle participation in the language of sparse matrix
algebra (Definitions 5 and 6):

* vertex participation ``t_A = ½ diag((A - I∘A)³)``
* edge participation   ``Δ_A = (A - I∘A) ∘ (A - I∘A)²``

These are the quantities the Kronecker formulas of :mod:`repro.core` relate
across factors and products.  This module computes them *directly* on a given
adjacency matrix with sparse kernels, serving both as the per-factor
computation inside the generator and as one of the independent baselines the
validation harness compares against.

Implementation note: ``diag(A³)`` is never computed via a full ``A @ A @ A``.
For a symmetric ``A`` the identity ``diag(A³) = (A ∘ A²) 1`` (row sums of the
Hadamard product) lets us stop after one sparse matrix product, which is the
standard "masked" triangle-counting kernel used by the GraphBLAS-style
implementations the paper cites.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph, hadamard, to_csr

__all__ = [
    "strip_self_loops",
    "vertex_triangles_matrix",
    "edge_triangles_matrix",
    "vertex_triangles",
    "edge_triangles",
    "total_triangles",
    "wedge_counts",
    "total_wedges",
]

MatrixOrGraph = Union[Graph, sp.spmatrix, np.ndarray]


def _as_adjacency(graph: MatrixOrGraph) -> sp.csr_matrix:
    """Accept a :class:`Graph` or a raw matrix and return canonical CSR."""
    if isinstance(graph, Graph):
        return graph.adjacency
    return to_csr(graph)


def strip_self_loops(adj: sp.spmatrix) -> sp.csr_matrix:
    """Return ``A - I ∘ A`` (the adjacency with its diagonal removed)."""
    out = sp.csr_matrix(adj, copy=True).tolil()
    out.setdiag(0)
    out = out.tocsr()
    out.eliminate_zeros()
    out.sort_indices()
    return out


def edge_triangles_matrix(graph: MatrixOrGraph) -> sp.csr_matrix:
    """Edge triangle participation ``Δ_A`` as a sparse matrix (Definition 6).

    ``Δ_A[i, j]`` is the number of triangles containing the edge ``(i, j)``.
    Self loops in the input are stripped first, per the paper's definition
    ``Δ_A = (A - A∘I) ∘ (A - A∘I)²``.
    """
    a = strip_self_loops(_as_adjacency(graph))
    return hadamard(a, a @ a)


def vertex_triangles_matrix(graph: MatrixOrGraph) -> np.ndarray:
    """Vertex triangle participation ``t_A`` (Definition 5) from a matrix input.

    Uses ``t_A = ½ Δ_A 1``, the row-sum identity noted after Definition 6.
    """
    delta = edge_triangles_matrix(graph)
    return (np.asarray(delta.sum(axis=1)).ravel() // 2).astype(np.int64)


def vertex_triangles(graph: MatrixOrGraph) -> np.ndarray:
    """Alias of :func:`vertex_triangles_matrix` accepting :class:`Graph` inputs."""
    return vertex_triangles_matrix(graph)


def edge_triangles(graph: MatrixOrGraph) -> sp.csr_matrix:
    """Alias of :func:`edge_triangles_matrix` accepting :class:`Graph` inputs."""
    return edge_triangles_matrix(graph)


def total_triangles(graph: MatrixOrGraph) -> int:
    """Total number of triangles ``τ(A) = (1/3) 1ᵗ t_A``."""
    t = vertex_triangles_matrix(graph)
    total = int(t.sum())
    if total % 3 != 0:  # pragma: no cover - defensive; t always sums to 3τ
        raise ArithmeticError("vertex triangle counts do not sum to a multiple of 3")
    return total // 3


def wedge_counts(graph: MatrixOrGraph) -> np.ndarray:
    """Number of wedges (2-paths) centred at each vertex: ``d_i (d_i - 1) / 2``."""
    adj = strip_self_loops(_as_adjacency(graph))
    d = np.asarray(adj.sum(axis=1)).ravel().astype(np.int64)
    return d * (d - 1) // 2


def total_wedges(graph: MatrixOrGraph) -> int:
    """Total number of wedges in the graph."""
    return int(wedge_counts(graph).sum())
