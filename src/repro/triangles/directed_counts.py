"""Directed triangle census: the 15 vertex types and 15 edge types of Figs. 4-5.

Section IV of the paper works in the reciprocal/directed edge model
(:class:`repro.graphs.DirectedGraph`): every adjacency matrix splits as
``A = A_r + A_d`` and a triangle is classified by the orientation pattern of
its three edges *as seen from* a central vertex (Definition 10 / Fig. 4) or a
central edge (Definition 11 / Fig. 5).  After removing symmetries there are
fifteen vertex types and fifteen edge types.

This module implements the paper's formula tables verbatim — every count is
a masked sparse matrix product over ``{A_d, A_d^t, A_r}`` — plus a
brute-force triple-loop census used by the test-suite as an independent
cross-check, and the aggregation identities that tie the directed census back
to the undirected triangle counts of the symmetrized graph.

Type naming follows the paper exactly (e.g. ``"ss+"``, ``"uto"``, ``"tt-"``
for vertex types; ``"+-o"``, ``"o++"``, ``"ooo"`` for edge types).  The
aliased names listed in Definitions 10/11 (``"us+"`` = ``"su-"`` and so on)
are accepted everywhere and resolved to their canonical spelling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import hadamard
from repro.graphs.directed import DirectedGraph

__all__ = [
    "CANONICAL_VERTEX_TYPES",
    "ALL_VERTEX_TYPES",
    "VERTEX_TYPE_ALIASES",
    "CANONICAL_EDGE_TYPES",
    "ALL_EDGE_TYPES",
    "EDGE_TYPE_ALIASES",
    "canonical_vertex_type",
    "canonical_edge_type",
    "directed_vertex_triangle_counts",
    "directed_edge_triangle_counts",
    "directed_vertex_triangle_counts_bruteforce",
    "directed_edge_triangle_counts_bruteforce",
    "total_directed_vertex_triangles",
    "total_directed_edge_triangles",
]

# ---------------------------------------------------------------------------
# Formula tables (Definitions 10 and 11, written verbatim)
# ---------------------------------------------------------------------------
# Matrix symbols: "d" = A_d, "t" = A_d^t, "r" = A_r.
_SYM = ("d", "t", "r")

#: Vertex-type formulas: name -> (M1, M2, M3, halved); count = diag(M1 @ M2 @ M3),
#: divided by two when ``halved`` (the three self-symmetric types).
_VERTEX_SPECS: Dict[str, Tuple[str, str, str, bool]] = {
    "ss+": ("t", "d", "d", False),
    "sso": ("t", "r", "d", True),
    "su+": ("r", "d", "d", False),
    "suo": ("r", "r", "d", False),
    "su-": ("r", "t", "d", False),
    "st+": ("d", "d", "d", False),
    "sto": ("d", "r", "d", False),
    "st-": ("d", "t", "d", False),
    "uu+": ("r", "d", "r", False),
    "uuo": ("r", "r", "r", True),
    "ut+": ("d", "d", "r", False),
    "uto": ("d", "r", "r", False),
    "ut-": ("d", "t", "r", False),
    "tt+": ("d", "t", "t", False),
    "tto": ("d", "r", "t", True),
}

#: The fifteen canonical vertex types of Fig. 4, in the paper's reading order.
CANONICAL_VERTEX_TYPES: Tuple[str, ...] = tuple(_VERTEX_SPECS)

#: Aliased spellings from Definition 10 (equal counts by the reversal symmetry).
VERTEX_TYPE_ALIASES: Dict[str, str] = {
    "ss-": "ss+",
    "us+": "su-",
    "uso": "suo",
    "us-": "su+",
    "uu-": "uu+",
    "ts+": "st-",
    "tso": "sto",
    "ts-": "st+",
    "tu+": "ut-",
    "tuo": "uto",
    "tu-": "ut+",
    "tt-": "tt+",
}

#: Every accepted vertex-type name (canonical + aliases).
ALL_VERTEX_TYPES: Tuple[str, ...] = tuple(list(CANONICAL_VERTEX_TYPES) + list(VERTEX_TYPE_ALIASES))

#: Edge-type formulas: name -> (mask, M1, M2); count matrix = mask ∘ (M1 @ M2).
_EDGE_SPECS: Dict[str, Tuple[str, str, str]] = {
    "+++": ("d", "d", "d"),
    "++-": ("d", "t", "d"),
    "++o": ("d", "r", "d"),
    "+-+": ("d", "d", "t"),
    "+--": ("d", "t", "t"),
    "+-o": ("d", "r", "t"),
    "+o+": ("d", "d", "r"),
    "+o-": ("d", "t", "r"),
    "+oo": ("d", "r", "r"),
    "o++": ("r", "d", "d"),
    "o+-": ("r", "t", "d"),
    "o+o": ("r", "r", "d"),
    "o-+": ("r", "d", "t"),
    "o-o": ("r", "r", "t"),
    "ooo": ("r", "r", "r"),
}

#: The fifteen canonical edge types of Fig. 5.
CANONICAL_EDGE_TYPES: Tuple[str, ...] = tuple(_EDGE_SPECS)

#: Aliased edge-type spellings from Definition 11.  Note that as *matrices*
#: the aliased count is the transpose of the canonical one (the two names
#: describe the same triangles read from the two orientations of the central
#: reciprocal edge); entrywise totals per undirected edge agree.
EDGE_TYPE_ALIASES: Dict[str, str] = {
    "o--": "o++",
    "oo+": "o+o",
    "oo-": "o-o",
}

#: Every accepted edge-type name (canonical + aliases).
ALL_EDGE_TYPES: Tuple[str, ...] = tuple(list(CANONICAL_EDGE_TYPES) + list(EDGE_TYPE_ALIASES))


def canonical_vertex_type(name: str) -> str:
    """Resolve a vertex-type name (possibly aliased) to its canonical spelling."""
    if name in _VERTEX_SPECS:
        return name
    if name in VERTEX_TYPE_ALIASES:
        return VERTEX_TYPE_ALIASES[name]
    raise KeyError(f"unknown directed vertex triangle type {name!r}")


def canonical_edge_type(name: str) -> str:
    """Resolve an edge-type name (possibly aliased) to its canonical spelling."""
    if name in _EDGE_SPECS:
        return name
    if name in EDGE_TYPE_ALIASES:
        return EDGE_TYPE_ALIASES[name]
    raise KeyError(f"unknown directed edge triangle type {name!r}")


# ---------------------------------------------------------------------------
# Matrix-formula census
# ---------------------------------------------------------------------------
def _parts(graph: Union[DirectedGraph, sp.spmatrix]) -> Dict[str, sp.csr_matrix]:
    dg = graph if isinstance(graph, DirectedGraph) else DirectedGraph(graph)
    if dg.has_self_loops:
        raise ValueError(
            "directed triangle formulas assume diag(A) = 0; "
            "call .without_self_loops() first"
        )
    ar, ad = dg.decompose()
    return {"d": ad, "t": ad.T.tocsr(), "r": ar}


def directed_vertex_triangle_counts(
    graph: Union[DirectedGraph, sp.spmatrix],
    types: Optional[Iterable[str]] = None,
) -> Dict[str, np.ndarray]:
    """Per-vertex counts of each directed triangle type (Definition 10).

    Parameters
    ----------
    graph:
        Directed graph without self loops.
    types:
        Iterable of type names (canonical or aliased).  Defaults to the
        fifteen canonical types.

    Returns
    -------
    dict mapping each *requested* name to a length-``n`` integer vector.
    """
    parts = _parts(graph)
    requested = list(types) if types is not None else list(CANONICAL_VERTEX_TYPES)
    cache: Dict[str, np.ndarray] = {}
    out: Dict[str, np.ndarray] = {}
    for name in requested:
        canon = canonical_vertex_type(name)
        if canon not in cache:
            m1, m2, m3, halved = _VERTEX_SPECS[canon]
            prod = parts[m1] @ parts[m2] @ parts[m3]
            diag = np.asarray(prod.diagonal(), dtype=np.int64)
            cache[canon] = diag // 2 if halved else diag
        out[name] = cache[canon].copy()
    return out


def directed_edge_triangle_counts(
    graph: Union[DirectedGraph, sp.spmatrix],
    types: Optional[Iterable[str]] = None,
) -> Dict[str, sp.csr_matrix]:
    """Per-edge counts of each directed triangle type (Definition 11).

    The value for type ``τ`` is a sparse matrix whose ``(i, j)`` entry counts
    triangles of type ``τ`` at the arc/edge ``(i, j)``.  Aliased names return
    the transpose of their canonical matrix (same triangles, central edge
    read in the opposite orientation).
    """
    parts = _parts(graph)
    requested = list(types) if types is not None else list(CANONICAL_EDGE_TYPES)
    cache: Dict[str, sp.csr_matrix] = {}
    out: Dict[str, sp.csr_matrix] = {}
    for name in requested:
        canon = canonical_edge_type(name)
        if canon not in cache:
            mask, m1, m2 = _EDGE_SPECS[canon]
            cache[canon] = hadamard(parts[mask], parts[m1] @ parts[m2])
        value = cache[canon]
        out[name] = value.copy() if name == canon else value.T.tocsr()
    return out


def total_directed_vertex_triangles(counts: Mapping[str, np.ndarray]) -> np.ndarray:
    """Sum a per-type vertex census over the canonical types present.

    When *counts* holds all fifteen canonical types this equals the
    undirected triangle participation of the symmetrized graph ``A_u`` —
    the coverage identity used by the tests.
    """
    canonical = [counts[name] for name in CANONICAL_VERTEX_TYPES if name in counts]
    if not canonical:
        raise ValueError("counts contains no canonical vertex types")
    return np.sum(canonical, axis=0)


def total_directed_edge_triangles(counts: Mapping[str, sp.spmatrix]) -> sp.csr_matrix:
    """Complete coverage sum of a per-type edge census.

    Sums every canonical type and, for the three reciprocal-central types that
    have aliased spellings (``o--``, ``oo+``, ``oo-``), additionally adds the
    transpose of their canonical matrix — the aliased reading of the central
    edge.  With a full canonical census this total equals the undirected edge
    triangle participation ``Δ_{A_u}`` restricted to the adjacency support of
    ``A`` (the coverage identity used by the tests).
    """
    canonical = {name: sp.csr_matrix(counts[name]) for name in CANONICAL_EDGE_TYPES if name in counts}
    if not canonical:
        raise ValueError("counts contains no canonical edge types")
    total = None
    for name, mat in canonical.items():
        total = mat.copy() if total is None else total + mat
    for alias, canon in EDGE_TYPE_ALIASES.items():
        if canon in canonical:
            total = total + canonical[canon].T.tocsr()
    return sp.csr_matrix(total)


# ---------------------------------------------------------------------------
# Brute-force census (independent cross-check used by the tests)
# ---------------------------------------------------------------------------
def _dense_parts(graph: Union[DirectedGraph, sp.spmatrix]) -> Dict[str, np.ndarray]:
    parts = _parts(graph)
    return {k: np.asarray(v.todense(), dtype=np.int64) for k, v in parts.items()}


def directed_vertex_triangle_counts_bruteforce(
    graph: Union[DirectedGraph, sp.spmatrix],
    types: Optional[Iterable[str]] = None,
) -> Dict[str, np.ndarray]:
    """Triple-loop evaluation of Definition 10 (small graphs only).

    Walks every ordered vertex pair ``(a, b)`` explicitly instead of using
    sparse matrix products, giving a genuinely independent implementation to
    compare against :func:`directed_vertex_triangle_counts`.
    """
    dense = _dense_parts(graph)
    n = dense["d"].shape[0]
    requested = list(types) if types is not None else list(CANONICAL_VERTEX_TYPES)
    out: Dict[str, np.ndarray] = {}
    for name in requested:
        canon = canonical_vertex_type(name)
        m1, m2, m3, halved = _VERTEX_SPECS[canon]
        x1, x2, x3 = dense[m1], dense[m2], dense[m3]
        counts = np.zeros(n, dtype=np.int64)
        for v in range(n):
            total = 0
            # Scalar lookups are the point here: this oracle must stay
            # independent of the vectorized path it validates.
            for a in range(n):
                if x1[v, a] == 0:  # lint: ignore[no-scalar-sparse-getitem]
                    continue
                for b in range(n):
                    total += x1[v, a] * x2[a, b] * x3[b, v]  # lint: ignore[no-scalar-sparse-getitem]
            counts[v] = total // 2 if halved else total
        out[name] = counts
    return out


def directed_edge_triangle_counts_bruteforce(
    graph: Union[DirectedGraph, sp.spmatrix],
    types: Optional[Iterable[str]] = None,
) -> Dict[str, np.ndarray]:
    """Triple-loop evaluation of Definition 11, returning dense matrices."""
    dense = _dense_parts(graph)
    n = dense["d"].shape[0]
    requested = list(types) if types is not None else list(CANONICAL_EDGE_TYPES)
    out: Dict[str, np.ndarray] = {}
    for name in requested:
        canon = canonical_edge_type(name)
        mask_sym, m1, m2 = _EDGE_SPECS[canon]
        mask, x1, x2 = dense[mask_sym], dense[m1], dense[m2]
        counts = np.zeros((n, n), dtype=np.int64)
        # Same deliberate-bruteforce exemption as the vertex oracle above.
        for i in range(n):
            for j in range(n):
                if mask[i, j] == 0:  # lint: ignore[no-scalar-sparse-getitem]
                    continue
                total = 0
                for w in range(n):
                    total += x1[i, w] * x2[w, j]  # lint: ignore[no-scalar-sparse-getitem]
                counts[i, j] = total
        out[name] = counts if name == canon else counts.T.copy()
    return out
