"""Unified front-end for triangle participation with selectable algorithms.

The package offers three independent implementations of the same statistics —
the sparse linear-algebra kernel (``"matrix"``), the node-iterator
(``"node"``), and the degree-ordered edge-iterator (``"wedge"``).  This
module exposes them behind a single pair of functions so that tests, the
validation harness, and the ablation benchmarks can switch algorithm with a
keyword argument.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.triangles import edge_iterator, linear_algebra, node_iterator

__all__ = [
    "vertex_triangle_participation",
    "edge_triangle_participation",
    "triangle_count",
    "ALGORITHMS",
]

#: Names accepted by the ``method`` keyword of the functions in this module.
ALGORITHMS = ("matrix", "node", "wedge")

MatrixOrGraph = Union[Graph, sp.spmatrix, np.ndarray]


def _check_method(method: str) -> None:
    if method not in ALGORITHMS:
        raise ValueError(f"unknown method {method!r}; expected one of {ALGORITHMS}")


def vertex_triangle_participation(graph: MatrixOrGraph, *, method: str = "matrix") -> np.ndarray:
    """Triangle participation at every vertex (the paper's ``t_A``).

    Parameters
    ----------
    graph:
        Undirected graph or adjacency matrix; self loops are ignored.
    method:
        ``"matrix"`` (sparse ``A ∘ A²`` kernel, default), ``"node"``
        (neighbourhood intersection), or ``"wedge"`` (degree-ordered
        edge iterator).
    """
    _check_method(method)
    if method == "matrix":
        return linear_algebra.vertex_triangles(graph)
    if method == "node":
        return node_iterator.vertex_triangles_node_iterator(graph)
    return edge_iterator.count_triangles_edge_iterator(graph).per_vertex


def edge_triangle_participation(graph: MatrixOrGraph, *, method: str = "matrix") -> sp.csr_matrix:
    """Triangle participation at every edge (the paper's ``Δ_A``).

    Only the ``"matrix"`` and ``"wedge"`` methods produce per-edge output;
    ``"node"`` raises ``ValueError``.
    """
    _check_method(method)
    if method == "matrix":
        return linear_algebra.edge_triangles(graph)
    if method == "wedge":
        return edge_iterator.count_triangles_edge_iterator(graph).per_edge
    raise ValueError("the node-iterator method does not produce per-edge participation")


def triangle_count(graph: MatrixOrGraph, *, method: str = "matrix") -> int:
    """Global triangle count ``τ(A)`` with the selected algorithm."""
    _check_method(method)
    if method == "matrix":
        return linear_algebra.total_triangles(graph)
    if method == "node":
        return node_iterator.total_triangles_node_iterator(graph)
    return edge_iterator.count_triangles_edge_iterator(graph).total
