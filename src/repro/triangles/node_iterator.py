"""Node-iterator triangle counting (neighbourhood-intersection baseline).

The classic combinatorial algorithm: for every vertex ``v`` intersect the
adjacency lists of each pair of neighbours — or, as implemented here, for each
neighbour ``u`` of ``v`` intersect ``N(v)`` with ``N(u)``.  This is the
formula-free baseline used by the validation harness to cross-check the
linear-algebra kernels and, transitively, the Kronecker formulas.

Complexity is :math:`O(\\sum_v d_v^2)` in the worst case, the
:math:`O(|E|^{3/2})` bound of Chiba–Nishizeki is achieved by the
degree-ordered variant in :mod:`repro.triangles.edge_iterator`.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.triangles.linear_algebra import strip_self_loops

__all__ = [
    "vertex_triangles_node_iterator",
    "total_triangles_node_iterator",
    "enumerate_triangles",
]


def _csr_no_loops(graph: Union[Graph, sp.spmatrix]) -> sp.csr_matrix:
    adj = graph.adjacency if isinstance(graph, Graph) else sp.csr_matrix(graph)
    return strip_self_loops(adj)


def vertex_triangles_node_iterator(graph: Union[Graph, sp.spmatrix]) -> np.ndarray:
    """Per-vertex triangle counts by neighbourhood intersection.

    Self loops are ignored.  Returns the same vector as
    :func:`repro.triangles.linear_algebra.vertex_triangles` but computed with
    an entirely different (combinatorial) algorithm, which is exactly what a
    benchmark-validation consumer of the generator would run.
    """
    adj = _csr_no_loops(graph)
    n = adj.shape[0]
    indptr, indices = adj.indptr, adj.indices
    counts = np.zeros(n, dtype=np.int64)
    for v in range(n):
        nbrs = indices[indptr[v]:indptr[v + 1]]
        if nbrs.size < 2:
            continue
        # For each neighbour u, count common neighbours of u and v; every
        # triangle {v, u, w} is found twice (once via u, once via w).
        total = 0
        nbr_set = nbrs  # sorted by CSR canonical form
        for u in nbrs:
            u_nbrs = indices[indptr[u]:indptr[u + 1]]
            total += np.intersect1d(nbr_set, u_nbrs, assume_unique=True).size
        counts[v] = total // 2
    return counts


def total_triangles_node_iterator(graph: Union[Graph, sp.spmatrix]) -> int:
    """Total triangle count via the node-iterator algorithm."""
    return int(vertex_triangles_node_iterator(graph).sum()) // 3


def enumerate_triangles(graph: Union[Graph, sp.spmatrix]) -> Iterator[Tuple[int, int, int]]:
    """Yield every triangle exactly once as an ordered triple ``i < j < k``.

    Intended for small graphs (tests, egonets, cross-checks); the generator
    walks edges ``(i, j)`` with ``i < j`` and reports common neighbours
    ``k > j``.
    """
    adj = _csr_no_loops(graph)
    indptr, indices = adj.indptr, adj.indices
    n = adj.shape[0]
    for i in range(n):
        i_nbrs = indices[indptr[i]:indptr[i + 1]]
        for j in i_nbrs[i_nbrs > i]:
            j_nbrs = indices[indptr[j]:indptr[j + 1]]
            common = np.intersect1d(i_nbrs, j_nbrs, assume_unique=True)
            for k in common[common > j]:
                yield int(i), int(j), int(k)
