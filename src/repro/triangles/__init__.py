"""Direct triangle-counting algorithms (the formula-free baselines).

The Kronecker formulas of :mod:`repro.core` relate triangle statistics of a
product graph to those of its factors; this package computes the statistics
*directly* on any graph — on the small factors (as the generator must) and on
materialized products or egonets (as the validation harness must).
"""

from repro.triangles.clustering import (
    average_clustering_coefficient,
    edge_clustering_coefficients,
    global_clustering_coefficient,
    local_clustering_coefficients,
)
from repro.triangles.directed_counts import (
    ALL_EDGE_TYPES,
    ALL_VERTEX_TYPES,
    CANONICAL_EDGE_TYPES,
    CANONICAL_VERTEX_TYPES,
    EDGE_TYPE_ALIASES,
    VERTEX_TYPE_ALIASES,
    canonical_edge_type,
    canonical_vertex_type,
    directed_edge_triangle_counts,
    directed_edge_triangle_counts_bruteforce,
    directed_vertex_triangle_counts,
    directed_vertex_triangle_counts_bruteforce,
    total_directed_edge_triangles,
    total_directed_vertex_triangles,
)
from repro.triangles.edge_iterator import TriangleCensus, count_triangles_edge_iterator
from repro.triangles.labeled_counts import (
    labeled_edge_triangle_counts,
    labeled_edge_triangle_counts_bruteforce,
    labeled_vertex_triangle_counts,
    labeled_vertex_triangle_counts_bruteforce,
    total_labeled_vertex_triangles,
)
from repro.triangles.linear_algebra import (
    edge_triangles,
    strip_self_loops,
    total_triangles,
    total_wedges,
    vertex_triangles,
    wedge_counts,
)
from repro.triangles.node_iterator import (
    enumerate_triangles,
    total_triangles_node_iterator,
    vertex_triangles_node_iterator,
)
from repro.triangles.participation import (
    ALGORITHMS,
    edge_triangle_participation,
    triangle_count,
    vertex_triangle_participation,
)

__all__ = [
    # linear algebra kernels
    "vertex_triangles",
    "edge_triangles",
    "total_triangles",
    "wedge_counts",
    "total_wedges",
    "strip_self_loops",
    # combinatorial baselines
    "vertex_triangles_node_iterator",
    "total_triangles_node_iterator",
    "enumerate_triangles",
    "TriangleCensus",
    "count_triangles_edge_iterator",
    # unified front-end
    "ALGORITHMS",
    "vertex_triangle_participation",
    "edge_triangle_participation",
    "triangle_count",
    # clustering
    "local_clustering_coefficients",
    "edge_clustering_coefficients",
    "global_clustering_coefficient",
    "average_clustering_coefficient",
    # directed census
    "CANONICAL_VERTEX_TYPES",
    "ALL_VERTEX_TYPES",
    "VERTEX_TYPE_ALIASES",
    "CANONICAL_EDGE_TYPES",
    "ALL_EDGE_TYPES",
    "EDGE_TYPE_ALIASES",
    "canonical_vertex_type",
    "canonical_edge_type",
    "directed_vertex_triangle_counts",
    "directed_edge_triangle_counts",
    "directed_vertex_triangle_counts_bruteforce",
    "directed_edge_triangle_counts_bruteforce",
    "total_directed_vertex_triangles",
    "total_directed_edge_triangles",
    # labeled census
    "labeled_vertex_triangle_counts",
    "labeled_edge_triangle_counts",
    "labeled_vertex_triangle_counts_bruteforce",
    "labeled_edge_triangle_counts_bruteforce",
    "total_labeled_vertex_triangles",
]
