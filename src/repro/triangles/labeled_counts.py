"""Labeled triangle census for vertex-coloured graphs (Fig. 6, Defs. 13-14).

Given an undirected, vertex-labeled graph, a triangle is classified by the
colours of its corners.  From a vertex's perspective the type is
``(q1, q2, q3)`` — its own colour and the (unordered) colours of the other
two corners; from an edge's perspective the type is the colours of the two
endpoints plus the colour of the opposite vertex.

The paper expresses both counts as label-filtered matrix products
(Definitions 13 and 14):

.. math::

    t^{(q_1,q_2,q_3)}_A &= \\tfrac{1}{2}\\,\\mathrm{diag}
        (\\Pi_{q_1} A \\Pi_{q_3} A \\Pi_{q_2} A \\Pi_{q_1})
        \\quad (q_2 = q_3), \\\\
    t^{(q_1,q_2,q_3)}_A &= \\mathrm{diag}
        (\\Pi_{q_1} A \\Pi_{q_3} A \\Pi_{q_2} A \\Pi_{q_1})
        \\quad (q_2 \\ne q_3), \\\\
    \\Delta^{(q_1,q_2,q_3)}_A &= (\\Pi_{q_2} A \\Pi_{q_1}) \\circ (A \\Pi_{q_3} A).

This module evaluates them with sparse kernels and also provides a
brute-force enumeration census used as an independent cross-check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import hadamard
from repro.graphs.labeled import (
    VertexLabeledGraph,
    edge_triangle_label_types,
    vertex_triangle_label_types,
)
from repro.triangles.node_iterator import enumerate_triangles

__all__ = [
    "labeled_vertex_triangle_counts",
    "labeled_edge_triangle_counts",
    "labeled_vertex_triangle_counts_bruteforce",
    "labeled_edge_triangle_counts_bruteforce",
    "total_labeled_vertex_triangles",
]

LabelType = Tuple[int, int, int]


def _check_no_self_loops(graph: VertexLabeledGraph) -> None:
    if graph.has_self_loops:
        raise ValueError(
            "labeled triangle formulas assume diag(A) = 0; "
            "call .without_self_loops() first"
        )


def labeled_vertex_triangle_counts(
    graph: VertexLabeledGraph,
    types: Optional[Iterable[LabelType]] = None,
) -> Dict[LabelType, np.ndarray]:
    """Per-vertex counts of each labeled triangle type (Definition 13).

    Parameters
    ----------
    graph:
        Undirected vertex-labeled graph without self loops.
    types:
        Iterable of ``(q1, q2, q3)`` types with ``q2 <= q3``; defaults to all
        distinct types for the graph's label alphabet.
    """
    _check_no_self_loops(graph)
    adj = graph.adjacency
    filters = graph.filters()
    requested: List[LabelType] = (
        [tuple(t) for t in types] if types is not None
        else vertex_triangle_label_types(graph.n_labels)
    )
    out: Dict[LabelType, np.ndarray] = {}
    for q1, q2, q3 in requested:
        path = filters[q1] @ adj @ filters[q3] @ adj @ filters[q2] @ adj @ filters[q1]
        diag = np.asarray(path.diagonal(), dtype=np.int64)
        out[(q1, q2, q3)] = diag // 2 if q2 == q3 else diag
    return out


def labeled_edge_triangle_counts(
    graph: VertexLabeledGraph,
    types: Optional[Iterable[LabelType]] = None,
) -> Dict[LabelType, sp.csr_matrix]:
    """Per-edge counts of each labeled triangle type (Definition 14).

    The returned matrix for type ``(q1, q2, q3)`` has a non-zero ``(i, j)``
    entry only when ``f(j) = q1`` and ``f(i) = q2``; the entry counts the
    triangles through edge ``(i, j)`` whose opposite vertex has colour ``q3``.
    """
    _check_no_self_loops(graph)
    adj = graph.adjacency
    filters = graph.filters()
    requested: List[LabelType] = (
        [tuple(t) for t in types] if types is not None
        else edge_triangle_label_types(graph.n_labels)
    )
    out: Dict[LabelType, sp.csr_matrix] = {}
    for q1, q2, q3 in requested:
        mask = (filters[q2] @ adj @ filters[q1]).tocsr()
        paths = adj @ filters[q3] @ adj
        out[(q1, q2, q3)] = hadamard(mask, paths)
    return out


def total_labeled_vertex_triangles(counts: Dict[LabelType, np.ndarray]) -> np.ndarray:
    """Sum a labeled vertex census over all its types.

    When *counts* covers every type ``(q1, q2, q3)`` with ``q2 <= q3`` the sum
    equals the unlabeled triangle participation vector ``t_A`` — the coverage
    identity used by the tests.
    """
    if not counts:
        raise ValueError("counts is empty")
    return np.sum(list(counts.values()), axis=0)


# ---------------------------------------------------------------------------
# Brute-force enumeration census (independent cross-check)
# ---------------------------------------------------------------------------
def labeled_vertex_triangle_counts_bruteforce(
    graph: VertexLabeledGraph,
) -> Dict[LabelType, np.ndarray]:
    """Enumerate all triangles and bin them by corner colours (small graphs).

    Types are reported with ``q2 <= q3``, matching
    :func:`repro.graphs.vertex_triangle_label_types`.
    """
    _check_no_self_loops(graph)
    labels = graph.labels
    n = graph.n_vertices
    out: Dict[LabelType, np.ndarray] = {
        t: np.zeros(n, dtype=np.int64) for t in vertex_triangle_label_types(graph.n_labels)
    }
    for i, j, k in enumerate_triangles(graph):
        for center, others in ((i, (j, k)), (j, (i, k)), (k, (i, j))):
            q1 = int(labels[center])
            qa, qb = sorted((int(labels[others[0]]), int(labels[others[1]])))
            out[(q1, qa, qb)][center] += 1
    return out


def labeled_edge_triangle_counts_bruteforce(
    graph: VertexLabeledGraph,
) -> Dict[LabelType, np.ndarray]:
    """Enumerate triangles and bin them per edge entry, as dense matrices.

    Matches the orientation convention of Definition 14: the count for type
    ``(q1, q2, q3)`` is stored at entry ``(i, j)`` where ``f(i) = q2`` and
    ``f(j) = q1``.
    """
    _check_no_self_loops(graph)
    labels = graph.labels
    n = graph.n_vertices
    out: Dict[LabelType, np.ndarray] = {
        t: np.zeros((n, n), dtype=np.int64) for t in edge_triangle_label_types(graph.n_labels)
    }
    for i, j, k in enumerate_triangles(graph):
        for (u, v), w in (((i, j), k), ((j, k), i), ((i, k), j)):
            q3 = int(labels[w])
            # The undirected edge {u, v} occupies both matrix entries.
            out[(int(labels[u]), int(labels[v]), q3)][v, u] += 1
            out[(int(labels[v]), int(labels[u]), q3)][u, v] += 1
    return out
