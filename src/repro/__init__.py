"""repro — non-stochastic Kronecker graph generation with exact triangle statistics.

Reproduction of *"On Large-Scale Graph Generation with Validation of Diverse
Triangle Statistics at Edges and Vertices"* (Sanders, Pearce, La Fond,
Kepner, 2018).  The package builds Kronecker product graphs ``C = A ⊗ B``
from two small factors and derives, in closed form, the exact triangle
participation of every vertex and edge of the product — undirected, directed,
and vertex-labeled — plus degree distributions and (under the Theorem 3
hypotheses) the full truss decomposition.

Quick start::

    from repro import generators, core

    A = generators.webgraph_like(2000, seed=1)      # scale-free factor
    B = A.with_self_loops()                          # B = A + I (Section VI)
    product = core.KroneckerGraph(A, B)

    t_C = core.kron_vertex_triangles(A, B)           # exact per-vertex counts
    tau = core.kron_triangle_count(A, B)             # exact global count
    report = core.validate_egonets(A, B, n_samples=5)
    assert report.passed

Subpackages
-----------
``repro.graphs``      graph substrates (undirected / directed / labeled), I/O, egonets
``repro.triangles``   direct triangle-counting baselines and censuses
``repro.truss``       truss decomposition by edge peeling
``repro.generators``  factor generators (cliques, scale-free, R-MAT, stochastic Kronecker)
``repro.core``        the Kronecker formulas, the implicit product graph, validation
``repro.parallel``    partitioned communication-free generation and streaming
``repro.perf``        vectorized CSR gather kernels behind the batched hot paths
``repro.store``       out-of-core shard store: compaction, manifest v2, range queries
``repro.analysis``    distribution diagnostics and summary tables
"""

from repro import analysis, core, generators, graphs, parallel, perf, store, triangles, truss
from repro.core import (
    KroneckerGraph,
    KroneckerTriangleStats,
    kron_degrees,
    kron_edge_triangles,
    kron_triangle_count,
    kron_vertex_triangles,
)
from repro.graphs import DirectedGraph, Graph, VertexLabeledGraph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "graphs",
    "triangles",
    "truss",
    "generators",
    "core",
    "parallel",
    "perf",
    "store",
    "analysis",
    "Graph",
    "DirectedGraph",
    "VertexLabeledGraph",
    "KroneckerGraph",
    "KroneckerTriangleStats",
    "kron_degrees",
    "kron_vertex_triangles",
    "kron_edge_triangles",
    "kron_triangle_count",
]
