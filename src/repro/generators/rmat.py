"""R-MAT recursive-matrix graph generator (Graph500-style stochastic baseline).

The paper contrasts its non-stochastic Kronecker products with the stochastic
generators used by current benchmarks (Graph500 / R-MAT, Remark 1): because
stochastic edges are sampled independently, vertex triplets rarely close into
triangles, so stochastic Kronecker graphs are triangle-poor relative to
real-world graphs of the same size.  This module implements R-MAT so that the
benchmark ``bench_rem1_stochastic_triangles`` can demonstrate that contrast
quantitatively.

The generator recursively drops each edge into one of the four quadrants of
the adjacency matrix with probabilities ``(a, b, c, d)``; the classic
Graph500 parameters are ``(0.57, 0.19, 0.19, 0.05)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.adjacency import Graph
from repro.graphs.directed import DirectedGraph

__all__ = ["rmat_edges", "rmat_graph", "rmat_directed_graph", "GRAPH500_PROBS"]

#: The canonical Graph500 R-MAT quadrant probabilities.
GRAPH500_PROBS: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05)


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    probs: Tuple[float, float, float, float] = GRAPH500_PROBS,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Sample ``edge_factor * 2**scale`` edge endpoints with the R-MAT recursion.

    Returns an ``(m, 2)`` integer array of (possibly duplicate, possibly
    self-loop) directed endpoints over ``2**scale`` vertices; callers decide
    how to symmetrize / dedupe.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    a, b, c, d = probs
    total = a + b + c + d
    if not np.isclose(total, 1.0):
        raise ValueError("R-MAT probabilities must sum to 1")
    n_edges = edge_factor * (1 << scale)
    rng = np.random.default_rng(seed)
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    # Vectorized over all edges: one quadrant decision per recursion level.
    for level in range(scale):
        bit = 1 << (scale - level - 1)
        draw = rng.random(n_edges)
        # Quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1).
        go_right = ((draw >= a) & (draw < a + b)) | (draw >= a + b + c)
        go_down = draw >= a + b
        cols += bit * go_right.astype(np.int64)
        rows += bit * go_down.astype(np.int64)
    return np.stack([rows, cols], axis=1)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    probs: Tuple[float, float, float, float] = GRAPH500_PROBS,
    *,
    seed: int = 0,
) -> Graph:
    """Undirected, deduplicated, self-loop-free R-MAT graph on ``2**scale`` vertices."""
    endpoints = rmat_edges(scale, edge_factor, probs, seed=seed)
    keep = endpoints[:, 0] != endpoints[:, 1]
    graph = Graph.from_edges(map(tuple, endpoints[keep]), n_vertices=1 << scale,
                             name=f"RMAT(2^{scale},{edge_factor})")
    return graph


def rmat_directed_graph(
    scale: int,
    edge_factor: int = 16,
    probs: Tuple[float, float, float, float] = GRAPH500_PROBS,
    *,
    seed: int = 0,
) -> DirectedGraph:
    """Directed, deduplicated, self-loop-free R-MAT graph on ``2**scale`` vertices."""
    endpoints = rmat_edges(scale, edge_factor, probs, seed=seed)
    keep = endpoints[:, 0] != endpoints[:, 1]
    return DirectedGraph.from_edges(map(tuple, endpoints[keep]), n_vertices=1 << scale,
                                    name=f"RMATd(2^{scale},{edge_factor})")
