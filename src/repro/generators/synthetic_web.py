"""Synthetic web-like scale-free graphs (substitute for web-NotreDame).

The paper's Section VI experiment uses the undirected, self-loop-free version
of the SNAP ``web-NotreDame`` crawl (325,729 vertices, 1,090,108 edges,
4,308,495 triangles) as both Kronecker factors.  That dataset cannot be
downloaded in this environment, so — per the substitution policy recorded in
``DESIGN.md`` — we generate a *web-like* factor instead: a preferential
attachment process with triad formation (Holme–Kim style), which yields the
two properties the experiment actually relies on:

* a heavy-tailed degree distribution (so the product's degree distribution is
  heavy-tailed and its max-degree ratio squares), and
* a rich, non-trivial triangle distribution across vertices and edges (so the
  formula/direct cross-checks are meaningful).

Every validated quantity in the reproduction (Thm 1 / Cor 1 / Thm 2 agreement,
Fig. 7 egonets, the Table VI row structure ``τ(A ⊗ A) = 6 τ(A)²`` and the
edge-count products) is a *relation* between factor and product statistics and
therefore holds for any factor; only the absolute sizes differ from the paper.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.graphs.adjacency import Graph

__all__ = ["webgraph_like", "web_notredame_substitute"]


def webgraph_like(
    n_vertices: int,
    edges_per_vertex: int = 3,
    triad_probability: float = 0.6,
    *,
    seed: int = 0,
) -> Graph:
    """Scale-free graph with triangles via preferential attachment + triad closure.

    Each new vertex attaches to ``edges_per_vertex`` targets; the first target
    is chosen preferentially (proportional to degree) and each subsequent
    target is, with probability ``triad_probability``, a random neighbour of
    the previous target (closing a triangle), otherwise another preferential
    pick.  The output is undirected, connected, and has no self loops.

    Parameters
    ----------
    n_vertices:
        Number of vertices (must exceed ``edges_per_vertex``).
    edges_per_vertex:
        Attachment edges per new vertex (``>= 1``).
    triad_probability:
        Probability in ``[0, 1]`` of closing a triangle on each extra edge.
    seed:
        RNG seed; the graph is fully deterministic given all parameters.
    """
    m = edges_per_vertex
    if m < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    if n_vertices <= m:
        raise ValueError("n_vertices must exceed edges_per_vertex")
    if not (0.0 <= triad_probability <= 1.0):
        raise ValueError("triad_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)

    edges: List[Tuple[int, int]] = []
    edge_set: Set[Tuple[int, int]] = set()
    endpoints: List[int] = []
    neighbours: List[Set[int]] = [set() for _ in range(n_vertices)]

    def add_edge(u: int, v: int) -> bool:
        if u == v:
            return False
        key = (min(u, v), max(u, v))
        if key in edge_set:
            return False
        edge_set.add(key)
        edges.append(key)
        endpoints.extend((u, v))
        neighbours[u].add(v)
        neighbours[v].add(u)
        return True

    # Seed clique on the first m+1 vertices so preferential choice is well defined.
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            add_edge(u, v)

    for u in range(m + 1, n_vertices):
        previous_target = None
        added = 0
        attempts = 0
        while added < m and attempts < 50 * m:
            attempts += 1
            close_triad = (
                previous_target is not None
                and rng.random() < triad_probability
                and len(neighbours[previous_target]) > 0
            )
            if close_triad:
                candidates = tuple(neighbours[previous_target])
                target = int(candidates[rng.integers(0, len(candidates))])
            else:
                target = int(endpoints[rng.integers(0, len(endpoints))])
            if add_edge(u, target):
                added += 1
                previous_target = target
    return Graph.from_edges(edges, n_vertices=n_vertices,
                            name=f"weblike({n_vertices},{m},{triad_probability})")


def web_notredame_substitute(*, scale: float = 0.01, seed: int = 7) -> Graph:
    """The default factor used by the Section VI reproduction benchmarks.

    ``scale`` controls the vertex count as a fraction of web-NotreDame's
    325,729 vertices; the default 1% (~3,257 vertices) keeps the direct
    validation of the product affordable on a laptop while preserving the
    heavy-tailed degree and triangle structure the experiment exercises.
    """
    n = max(32, int(round(325_729 * scale)))
    return webgraph_like(n, edges_per_vertex=3, triad_probability=0.65, seed=seed)
