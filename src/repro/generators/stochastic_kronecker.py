"""Stochastic Kronecker graph generator (Leskovec et al. baseline).

Remark 1 of the paper distinguishes its *non-stochastic* Kronecker products
from the widely used *stochastic* Kronecker model: start from a small
probability ("initiator") matrix ``P`` (e.g. 2×2), form its ``k``-fold
Kronecker power, and include each edge independently with the resulting
probability.  Because edges are independent, triplets of vertices rarely all
co-occur, and the resulting graphs are triangle-poor — the property the
benchmark ``bench_rem1_stochastic_triangles`` quantifies against a
non-stochastic product of comparable size.

Two samplers are provided: an exact dense sampler for small ``k`` (every
probability evaluated explicitly) and an edge-dropping sampler equivalent to
R-MAT-with-noise for larger ``k``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.adjacency import Graph

__all__ = [
    "kronecker_power_probabilities",
    "sample_stochastic_kronecker",
    "stochastic_kronecker_graph",
    "expected_edge_count",
]


def kronecker_power_probabilities(initiator: np.ndarray, k: int) -> np.ndarray:
    """The dense ``k``-fold Kronecker power of the initiator probability matrix."""
    init = np.asarray(initiator, dtype=np.float64)
    if init.ndim != 2 or init.shape[0] != init.shape[1]:
        raise ValueError("initiator must be a square matrix")
    if (init < 0).any() or (init > 1).any():
        raise ValueError("initiator entries must be probabilities in [0, 1]")
    if k < 1:
        raise ValueError("k must be >= 1")
    out = init.copy()
    for _ in range(k - 1):
        out = np.kron(out, init)
    return out


def expected_edge_count(initiator: np.ndarray, k: int) -> float:
    """Expected number of (directed) edges of the k-th stochastic Kronecker power."""
    init = np.asarray(initiator, dtype=np.float64)
    return float(init.sum() ** k)


def sample_stochastic_kronecker(
    initiator: np.ndarray,
    k: int,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Sample a 0/1 adjacency matrix from the k-th Kronecker power of *initiator*.

    Exact (every Bernoulli evaluated); intended for ``initiator`` of size 2-3
    and ``k`` up to ~12 so the dense probability matrix stays manageable.
    """
    probs = kronecker_power_probabilities(initiator, k)
    rng = np.random.default_rng(seed)
    sample = (rng.random(probs.shape) < probs).astype(np.int64)
    return sample


def stochastic_kronecker_graph(
    initiator: Optional[np.ndarray] = None,
    k: int = 8,
    *,
    seed: int = 0,
) -> Graph:
    """Undirected stochastic Kronecker graph (upper triangle sampled, symmetrized).

    The default initiator ``[[0.9, 0.5], [0.5, 0.2]]`` is in the ballpark of
    the fitted values reported for real networks by Leskovec et al.; with
    ``k`` doublings it yields a ``2**k``-vertex heavy-tailed graph.
    Self loops are removed.
    """
    if initiator is None:
        initiator = np.array([[0.9, 0.5], [0.5, 0.2]])
    sample = sample_stochastic_kronecker(initiator, k, seed=seed)
    upper = np.triu(sample, k=1)
    adj = upper + upper.T
    return Graph(adj, name=f"SKG(2^{k})", validate=False)
