"""Deterministic small-graph generators used throughout the paper's examples.

Example 1 of the paper is built from the clique ``K_n`` (all-ones matrix
minus the identity) and the "looped clique" ``J_n`` (all-ones matrix, i.e. a
clique with a self loop at every vertex); Example 2 uses a 5-vertex
"4-cycle with an added hub".  This module provides those graphs plus the
other standard deterministic shapes (cycles, paths, stars) the tests and
benchmarks compose into Kronecker factors with known statistics.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph

__all__ = [
    "complete_graph",
    "looped_clique",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "hub_cycle_graph",
    "triangle_graph",
    "empty_graph",
]


def complete_graph(n: int) -> Graph:
    """The clique ``K_n = J_n - I_n``: every pair of distinct vertices adjacent.

    Per Example 1, each vertex has degree ``n - 1``, participates in
    ``C(n-1, 2)`` triangles, and every edge participates in ``n - 2``.
    """
    if n < 1:
        raise ValueError("complete_graph requires n >= 1")
    dense = np.ones((n, n), dtype=np.int64) - np.eye(n, dtype=np.int64)
    return Graph(sp.csr_matrix(dense), name=f"K{n}", validate=False)


def looped_clique(n: int) -> Graph:
    """``J_n = 1 1ᵗ``: the clique with a self loop at every vertex.

    Used as a Kronecker factor to boost triangle counts (Example 1(b)/(c));
    note ``J_nA ⊗ J_nB - I`` is exactly ``K_{nA nB}``.
    """
    if n < 1:
        raise ValueError("looped_clique requires n >= 1")
    dense = np.ones((n, n), dtype=np.int64)
    return Graph(sp.csr_matrix(dense), name=f"J{n}", validate=False)


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n`` on ``n >= 3`` vertices (triangle-free for ``n > 3``)."""
    if n < 3:
        raise ValueError("cycle_graph requires n >= 3")
    idx = np.arange(n, dtype=np.int64)
    edges = np.stack([idx, (idx + 1) % n], axis=1)
    return Graph.from_edges(map(tuple, edges), n_vertices=n, name=f"C{n}")


def path_graph(n: int) -> Graph:
    """The path ``P_n`` on ``n >= 1`` vertices."""
    if n < 1:
        raise ValueError("path_graph requires n >= 1")
    if n == 1:
        return Graph.empty(1, name="P1")
    idx = np.arange(n - 1, dtype=np.int64)
    edges = np.stack([idx, idx + 1], axis=1)
    return Graph.from_edges(map(tuple, edges), n_vertices=n, name=f"P{n}")


def star_graph(n_leaves: int) -> Graph:
    """A star: one hub (vertex 0) joined to ``n_leaves`` leaves (triangle-free)."""
    if n_leaves < 0:
        raise ValueError("star_graph requires n_leaves >= 0")
    edges = [(0, i) for i in range(1, n_leaves + 1)]
    return Graph.from_edges(edges, n_vertices=n_leaves + 1, name=f"star{n_leaves}")


def triangle_graph() -> Graph:
    """The single triangle ``K_3`` (convenience alias)."""
    return complete_graph(3)


def empty_graph(n: int) -> Graph:
    """``n`` isolated vertices."""
    return Graph.empty(n, name=f"empty{n}")


def hub_cycle_graph() -> Graph:
    """The 5-vertex graph of Example 2: a 4-cycle plus a hub joined to all.

    In the paper's 1-based notation ``A = K_5 - e_2 e_4ᵗ - e_4 e_2ᵗ -
    e_3 e_5ᵗ - e_5 e_3ᵗ``: vertex 0 (the hub) is adjacent to every other
    vertex, and vertices 1-2-3-4 form a 4-cycle ``1-2-3-4-1``.  The graph has
    8 edges and 4 triangles; every cycle edge lies in exactly one triangle and
    every hub edge in exactly two, so all edges are in the 3-truss and none in
    the 4-truss.
    """
    dense = np.ones((5, 5), dtype=np.int64) - np.eye(5, dtype=np.int64)
    # Remove the two chords of the outer cycle (paper's vertices 2-4 and 3-5).
    for u, v in ((1, 3), (2, 4)):
        dense[u, v] = 0
        dense[v, u] = 0
    return Graph(sp.csr_matrix(dense), name="hub_cycle", validate=False)
