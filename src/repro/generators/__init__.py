"""Graph generators: Kronecker factor sources, paper examples, and baselines.

* :mod:`repro.generators.cliques` — the deterministic graphs of Examples 1-2.
* :mod:`repro.generators.classic` — Erdős–Rényi / random directed / random
  labeled fixtures.
* :mod:`repro.generators.power_law` — Barabási–Albert plus the paper's
  triangle-constrained preferential-attachment generator and the
  edge-deletion reduction (Section III.D).
* :mod:`repro.generators.rmat` / :mod:`repro.generators.stochastic_kronecker`
  — the stochastic baselines of Remark 1.
* :mod:`repro.generators.synthetic_web` — the web-NotreDame substitute used
  by the Section VI reproduction.
"""

from repro.generators.classic import (
    erdos_renyi,
    random_bipartite_like,
    random_directed_graph,
    random_labeled_graph,
)
from repro.generators.cliques import (
    complete_graph,
    cycle_graph,
    empty_graph,
    hub_cycle_graph,
    looped_clique,
    path_graph,
    star_graph,
    triangle_graph,
)
from repro.generators.power_law import (
    barabasi_albert,
    max_edge_triangle_participation,
    reduce_to_delta_le_one,
    triangle_constrained_pa,
)
from repro.generators.rmat import (
    GRAPH500_PROBS,
    rmat_directed_graph,
    rmat_edges,
    rmat_graph,
)
from repro.generators.stochastic_kronecker import (
    expected_edge_count,
    kronecker_power_probabilities,
    sample_stochastic_kronecker,
    stochastic_kronecker_graph,
)
from repro.generators.synthetic_web import web_notredame_substitute, webgraph_like

__all__ = [
    "complete_graph",
    "looped_clique",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "triangle_graph",
    "empty_graph",
    "hub_cycle_graph",
    "erdos_renyi",
    "random_directed_graph",
    "random_labeled_graph",
    "random_bipartite_like",
    "barabasi_albert",
    "triangle_constrained_pa",
    "reduce_to_delta_le_one",
    "max_edge_triangle_participation",
    "rmat_edges",
    "rmat_graph",
    "rmat_directed_graph",
    "GRAPH500_PROBS",
    "kronecker_power_probabilities",
    "sample_stochastic_kronecker",
    "stochastic_kronecker_graph",
    "expected_edge_count",
    "webgraph_like",
    "web_notredame_substitute",
]
