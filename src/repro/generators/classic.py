"""Classic random-graph generators used as test fixtures and baselines.

These are not the paper's contribution but are the substrate the tests,
property-based checks, and benchmarks draw factor graphs from: Erdős–Rényi
graphs, random directed graphs with a controlled reciprocal/directed mix
(the model of Section IV), and random vertex-labeled graphs (Section V).

All generators take an integer ``seed`` and are fully deterministic for a
given seed (``numpy.random.default_rng``), which keeps the benchmark tables
reproducible run to run.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.graphs.directed import DirectedGraph
from repro.graphs.labeled import VertexLabeledGraph

__all__ = [
    "erdos_renyi",
    "random_directed_graph",
    "random_labeled_graph",
    "random_bipartite_like",
]


def erdos_renyi(n: int, p: float, *, seed: int = 0, self_loops: bool = False) -> Graph:
    """G(n, p): each unordered pair is an edge independently with probability ``p``.

    Parameters
    ----------
    n, p:
        Number of vertices and edge probability.
    seed:
        RNG seed.
    self_loops:
        When ``True`` each vertex additionally gets a self loop with
        probability ``p`` (useful for exercising the self-loop formulas).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n, n)) < p, k=1).astype(np.int64)
    dense = upper + upper.T
    if self_loops:
        dense += np.diag((rng.random(n) < p).astype(np.int64))
    return Graph(sp.csr_matrix(dense), name=f"ER({n},{p})", validate=False)


def random_directed_graph(
    n: int,
    *,
    p_directed: float = 0.05,
    p_reciprocal: float = 0.05,
    seed: int = 0,
) -> DirectedGraph:
    """Random directed graph with separate directed / reciprocal edge densities.

    For every unordered pair ``{i, j}`` independently: with probability
    ``p_reciprocal`` both arcs are added; otherwise with probability
    ``p_directed`` a single arc (random orientation) is added.  No self
    loops.  This produces graphs exercising all fifteen directed triangle
    types of Figure 4.
    """
    if not (0.0 <= p_directed <= 1.0 and 0.0 <= p_reciprocal <= 1.0):
        raise ValueError("probabilities must lie in [0, 1]")
    if p_directed + p_reciprocal > 1.0 + 1e-12:
        raise ValueError("p_directed + p_reciprocal must be <= 1")
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n), dtype=np.int64)
    draw = rng.random((n, n))
    orient = rng.random((n, n)) < 0.5
    iu, ju = np.triu_indices(n, k=1)
    pair_draw = draw[iu, ju]
    reciprocal = pair_draw < p_reciprocal
    directed = (~reciprocal) & (pair_draw < p_reciprocal + p_directed)
    # Reciprocal pairs: both orientations.
    dense[iu[reciprocal], ju[reciprocal]] = 1
    dense[ju[reciprocal], iu[reciprocal]] = 1
    # Directed pairs: one orientation chosen by the ``orient`` coin.
    fwd = directed & orient[iu, ju]
    bwd = directed & ~orient[iu, ju]
    dense[iu[fwd], ju[fwd]] = 1
    dense[ju[bwd], iu[bwd]] = 1
    return DirectedGraph(sp.csr_matrix(dense), name=f"RD({n},{p_directed},{p_reciprocal})")


def random_labeled_graph(
    n: int,
    p: float,
    n_labels: int = 3,
    *,
    seed: int = 0,
    label_weights: Optional[Sequence[float]] = None,
) -> VertexLabeledGraph:
    """Erdős–Rényi graph with i.i.d. vertex labels from ``0 .. n_labels-1``."""
    base = erdos_renyi(n, p, seed=seed)
    rng = np.random.default_rng(seed + 1)
    if label_weights is not None:
        weights = np.asarray(label_weights, dtype=np.float64)
        if weights.shape[0] != n_labels or weights.sum() <= 0:
            raise ValueError("label_weights must have n_labels positive entries")
        weights = weights / weights.sum()
        labels = rng.choice(n_labels, size=n, p=weights)
    else:
        labels = rng.integers(0, n_labels, size=n)
    return VertexLabeledGraph(base.adjacency, labels, n_labels=n_labels,
                              name=f"ERL({n},{p},{n_labels})", validate=False)


def random_bipartite_like(n_left: int, n_right: int, p: float, *, seed: int = 0) -> Graph:
    """Random bipartite graph (triangle-free), handy as a degenerate test factor."""
    rng = np.random.default_rng(seed)
    block = (rng.random((n_left, n_right)) < p).astype(np.int64)
    n = n_left + n_right
    dense = np.zeros((n, n), dtype=np.int64)
    dense[:n_left, n_left:] = block
    dense[n_left:, :n_left] = block.T
    return Graph(sp.csr_matrix(dense), name=f"BIP({n_left},{n_right},{p})", validate=False)
