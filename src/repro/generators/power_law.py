"""Scale-free generators, including the paper's triangle-constrained variant.

Theorem 3 needs a second factor ``B`` in which *every edge participates in at
most one triangle* (``Δ_B ≤ 1``).  Section III.D offers two strategies for
producing scale-free graphs with that property:

(a) take a real-world graph and delete edges until every edge participates in
    at most one triangle, keeping the graph connected (protect a spanning
    tree), and
(b) a preferential-attachment generator that attaches each new vertex to an
    endpoint of a uniformly random existing edge and closes a triangle on
    that edge only if it is not yet in any triangle.

Both are implemented here, alongside the standard Barabási–Albert model used
as a generic scale-free factor source.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np
import scipy.sparse as sp

from repro.graphs.adjacency import Graph
from repro.triangles.linear_algebra import edge_triangles

__all__ = [
    "barabasi_albert",
    "triangle_constrained_pa",
    "reduce_to_delta_le_one",
    "max_edge_triangle_participation",
]


def barabasi_albert(n: int, m: int, *, seed: int = 0) -> Graph:
    """Barabási–Albert preferential attachment: each new vertex attaches to ``m`` targets.

    Implemented with the standard repeated-endpoint trick (targets drawn from
    the flattened edge-endpoint list) so the attachment probability is
    proportional to the current degree.

    Parameters
    ----------
    n:
        Total number of vertices (``n > m``).
    m:
        Edges added per new vertex (``m >= 1``).
    seed:
        RNG seed.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if n <= m:
        raise ValueError("n must exceed m")
    rng = np.random.default_rng(seed)
    # Start from a star on m+1 vertices so every early vertex has degree >= 1.
    edges: List[Tuple[int, int]] = [(i, m) for i in range(m)]
    endpoints: List[int] = [v for e in edges for v in e]
    for u in range(m + 1, n):
        targets: Set[int] = set()
        while len(targets) < m:
            targets.add(int(endpoints[rng.integers(0, len(endpoints))]))
        for v in targets:
            edges.append((u, v))
            endpoints.extend((u, v))
    return Graph.from_edges(edges, n_vertices=n, name=f"BA({n},{m})")


def triangle_constrained_pa(n: int, *, seed: int = 0) -> Graph:
    """The paper's preferential-attachment generator with ``Δ ≤ 1`` per edge.

    Section III.D, strategy (b): start from a single edge; for each new vertex
    ``u`` pick an existing edge ``(i, j)`` uniformly at random and a random
    endpoint ``v`` of it, add ``(u, v)``; if ``(i, j)`` participates in no
    triangle yet, also add ``(u, w)`` to the other endpoint, creating one
    triangle and marking all three of its edges as saturated.  The output is
    scale-free-ish (edge-sampling is degree-proportional) and satisfies the
    hypothesis of Theorem 3 by construction.

    Parameters
    ----------
    n:
        Number of vertices (``n >= 2``).
    seed:
        RNG seed.
    """
    if n < 2:
        raise ValueError("triangle_constrained_pa requires n >= 2")
    rng = np.random.default_rng(seed)
    edges: List[Tuple[int, int]] = [(0, 1)]
    # Number of triangles each edge currently participates in (by index).
    edge_triangle_count: List[int] = [0]
    for u in range(2, n):
        edge_idx = int(rng.integers(0, len(edges)))
        i, j = edges[edge_idx]
        v = i if rng.random() < 0.5 else j
        edges.append((u, v))
        edge_triangle_count.append(0)
        new_edge_uv = len(edges) - 1
        if edge_triangle_count[edge_idx] == 0:
            w = j if v == i else i
            edges.append((u, w))
            edge_triangle_count.append(0)
            new_edge_uw = len(edges) - 1
            # All three edges of the newly closed triangle are now saturated.
            edge_triangle_count[edge_idx] += 1
            edge_triangle_count[new_edge_uv] += 1
            edge_triangle_count[new_edge_uw] += 1
    return Graph.from_edges(edges, n_vertices=n, name=f"TPA({n})")


def max_edge_triangle_participation(graph: Graph) -> int:
    """The largest per-edge triangle count ``max Δ_A`` (0 for triangle-free graphs)."""
    delta = edge_triangles(graph)
    return int(delta.data.max()) if delta.nnz else 0


def _spanning_tree_edges(graph: Graph) -> Set[Tuple[int, int]]:
    """A spanning forest of *graph* as a set of sorted edge tuples (BFS per component)."""
    tree = sp.csgraph.breadth_first_tree(graph.adjacency, 0, directed=False)
    protected: Set[Tuple[int, int]] = set()
    coo = tree.tocoo()
    for u, v in zip(coo.row, coo.col):
        protected.add((min(int(u), int(v)), max(int(u), int(v))))
    # breadth_first_tree only covers the component of vertex 0; run the other
    # components explicitly so connectivity of each component is preserved.
    n_comp, labels = graph.connected_components()
    if n_comp > 1:
        for comp in range(n_comp):
            members = np.flatnonzero(labels == comp)
            if members.size == 0 or 0 in members:
                continue
            sub = graph.subgraph(members)
            sub_tree = sp.csgraph.breadth_first_tree(sub.adjacency, 0, directed=False).tocoo()
            for u, v in zip(sub_tree.row, sub_tree.col):
                gu, gv = int(members[u]), int(members[v])
                protected.add((min(gu, gv), max(gu, gv)))
    return protected


def reduce_to_delta_le_one(graph: Graph, *, max_rounds: Optional[int] = None) -> Graph:
    """Strategy (a): delete edges until every edge participates in at most one triangle.

    A spanning forest is protected so that connectivity (per component) is
    never destroyed.  In each round, for every edge with ``Δ > 1`` one
    non-protected edge of one of its triangles is scheduled for removal;
    rounds repeat until ``max Δ ≤ 1``.  Any triangle contains at most two
    forest edges, so a removable edge always exists and the procedure
    terminates.

    Parameters
    ----------
    graph:
        Undirected graph without self loops.
    max_rounds:
        Optional safety cap on peeling rounds (defaults to the edge count).
    """
    if graph.has_self_loops:
        graph = graph.without_self_loops()
    protected = _spanning_tree_edges(graph)
    current = graph.copy()
    rounds_cap = max_rounds if max_rounds is not None else max(1, graph.n_edges)

    for _ in range(rounds_cap):
        delta = edge_triangles(current)
        if delta.nnz == 0 or delta.data.max() <= 1:
            break
        adj = current.adjacency.tolil()
        coo = sp.triu(delta, k=1).tocoo()
        removed_this_round: Set[Tuple[int, int]] = set()
        for u, v, count in zip(coo.row, coo.col, coo.data):
            if count <= 1:
                continue
            u, v = int(u), int(v)
            if (min(u, v), max(u, v)) in removed_this_round:
                continue
            # Find a triangle {u, v, w} and remove one of its non-protected edges.
            u_nbrs = set(current.neighbors(u).tolist())
            v_nbrs = set(current.neighbors(v).tolist())
            removed = False
            for w in sorted(u_nbrs & v_nbrs):
                for a, b in ((u, v), (u, w), (v, w)):
                    key = (min(a, b), max(a, b))
                    if key in protected or key in removed_this_round:
                        continue
                    adj[a, b] = 0
                    adj[b, a] = 0
                    removed_this_round.add(key)
                    removed = True
                    break
                if removed:
                    break
        if not removed_this_round:
            break
        current = Graph(adj.tocsr(), name=current.name, validate=False)

    return Graph(current.adjacency, name=f"{graph.name}|Δ≤1" if graph.name else "Δ≤1",
                 validate=False)
