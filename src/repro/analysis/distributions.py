"""Degree and triangle distribution diagnostics (Section III.A observations).

The paper cares about three distributional facts of ``C = A ⊗ B``:

* the degree distribution is the (multiplicative) convolution of the factor
  distributions and stays heavy-tailed when the factors are heavy-tailed;
* the ratio of maximum degree to vertex count *squares* under the product;
* triangle participation is similarly multiplicative, so the product's
  triangle distribution spreads over many distinct values.

This module provides histogram utilities, a Hill-style tail-exponent
estimate, and the product-distribution convolution (computed from factor
histograms, never from length-``n_C`` arrays) that the E3 benchmark reports.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.graphs.adjacency import Graph

__all__ = [
    "histogram",
    "degree_histogram",
    "product_histogram",
    "complementary_cdf",
    "hill_tail_exponent",
    "heavy_tail_summary",
]


def histogram(values: np.ndarray) -> Dict[int, int]:
    """Exact histogram ``{value: count}`` of an integer array."""
    values = np.asarray(values, dtype=np.int64)
    uniq, counts = np.unique(values, return_counts=True)
    return {int(v): int(c) for v, c in zip(uniq, counts)}


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Histogram of vertex degrees (self loops excluded)."""
    return histogram(graph.degrees())


def product_histogram(hist_a: Dict[int, int], hist_b: Dict[int, int]) -> Dict[int, int]:
    """Histogram of ``x · y`` where ``x ~ hist_a`` and ``y ~ hist_b`` independently.

    This is exactly the degree histogram of ``A ⊗ B`` (loop-free factors)
    computed from the factor histograms — ``O(|support_A| · |support_B|)``
    work regardless of ``n_C``.
    """
    out: Dict[int, int] = {}
    for va, ca in hist_a.items():
        for vb, cb in hist_b.items():
            key = int(va) * int(vb)
            out[key] = out.get(key, 0) + int(ca) * int(cb)
    return out


def complementary_cdf(hist: Dict[int, int]) -> Tuple[np.ndarray, np.ndarray]:
    """Complementary CDF ``P(X >= x)`` over the histogram support (sorted)."""
    if not hist:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    values = np.asarray(sorted(hist), dtype=np.int64)
    counts = np.asarray([hist[int(v)] for v in values], dtype=np.float64)
    total = counts.sum()
    ccdf = (total - np.concatenate([[0.0], np.cumsum(counts)[:-1]])) / total
    return values, ccdf


def hill_tail_exponent(values: np.ndarray, *, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the Pareto tail exponent of a positive sample.

    Uses the top ``tail_fraction`` of the sorted sample.  Returns ``nan`` when
    fewer than 3 tail points are available; larger exponents mean lighter
    tails (a pure Pareto(α) sample estimates ≈ α).
    """
    sample = np.asarray(values, dtype=np.float64)
    sample = sample[sample > 0]
    if sample.size < 3:
        return float("nan")
    sample = np.sort(sample)
    k = max(2, int(np.ceil(sample.size * tail_fraction)))
    tail = sample[-k:]
    x_min = tail[0]
    if x_min <= 0:
        return float("nan")
    logs = np.log(tail / x_min)
    mean_log = logs.mean()
    if mean_log <= 0:
        return float("inf")
    return float(1.0 / mean_log)


def heavy_tail_summary(values: np.ndarray) -> Dict[str, float]:
    """Summary of a degree/triangle sample: max, mean, max/n ratio, tail exponent."""
    sample = np.asarray(values, dtype=np.float64)
    n = sample.size
    if n == 0:
        return {"n": 0, "max": 0.0, "mean": 0.0, "max_over_n": 0.0, "hill_exponent": float("nan")}
    return {
        "n": float(n),
        "max": float(sample.max()),
        "mean": float(sample.mean()),
        "max_over_n": float(sample.max()) / n,
        "hill_exponent": hill_tail_exponent(sample),
    }
