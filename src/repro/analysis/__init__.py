"""Distribution diagnostics and summary tables for factors and products."""

from repro.analysis.distributions import (
    complementary_cdf,
    degree_histogram,
    heavy_tail_summary,
    hill_tail_exponent,
    histogram,
    product_histogram,
)
from repro.analysis.summary import (
    SummaryRow,
    format_count,
    format_table,
    graph_summary,
    kronecker_summary,
)

__all__ = [
    "histogram",
    "degree_histogram",
    "product_histogram",
    "complementary_cdf",
    "hill_tail_exponent",
    "heavy_tail_summary",
    "SummaryRow",
    "graph_summary",
    "kronecker_summary",
    "format_count",
    "format_table",
]
