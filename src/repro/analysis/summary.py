"""Summary tables for factors and Kronecker products (the Section VI table).

The paper's experiment section reports, for each matrix (factor or product),
the vertex count, edge count and triangle count — with the product rows
computed purely from the Kronecker formulas.  :func:`graph_summary` and
:func:`kronecker_summary` produce those rows; :func:`format_table` renders a
list of rows the way the paper's table reads (including the human-friendly
``K/M/B/T`` suffixes, e.g. ``2.38T`` edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.degree_formulas import kron_degrees
from repro.core.kronecker import KroneckerGraph
from repro.core.triangle_formulas import kron_triangle_count
from repro.graphs.adjacency import Graph
from repro.triangles.linear_algebra import total_triangles

__all__ = ["SummaryRow", "graph_summary", "kronecker_summary", "format_count", "format_table"]


@dataclass(frozen=True)
class SummaryRow:
    """One row of the Section VI-style summary table."""

    name: str
    n_vertices: int
    n_edges: int
    n_triangles: int

    def formatted(self) -> List[str]:
        """The row rendered with K/M/B/T suffixes, as in the paper's table."""
        return [
            self.name,
            format_count(self.n_vertices),
            format_count(self.n_edges),
            format_count(self.n_triangles),
        ]


def format_count(value: int) -> str:
    """Format a count with the paper's suffix convention (325.7K, 2.38T, ...)."""
    value = float(value)
    for threshold, suffix in ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "K")):
        if abs(value) >= threshold:
            return f"{value / threshold:.4g}{suffix}"
    return f"{int(value)}"


def graph_summary(graph: Graph, *, name: Optional[str] = None) -> SummaryRow:
    """Vertices / edges / triangles of a factor graph, computed directly."""
    return SummaryRow(
        name=name or graph.name or "graph",
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        n_triangles=total_triangles(graph),
    )


def kronecker_summary(factor_a: Graph, factor_b: Graph, *, name: Optional[str] = None) -> SummaryRow:
    """Vertices / edges / triangles of ``A ⊗ B`` via the Kronecker formulas only.

    Nothing of product size is allocated: vertex and edge counts come from
    factor counts, the triangle count from
    :func:`repro.core.kron_triangle_count`.
    """
    product = KroneckerGraph(factor_a, factor_b)
    return SummaryRow(
        name=name or product.name,
        n_vertices=product.n_vertices,
        n_edges=product.n_edges,
        n_triangles=kron_triangle_count(factor_a, factor_b),
    )


def format_table(rows: Iterable[SummaryRow], *, header: bool = True) -> str:
    """Render rows as an aligned text table (the benchmark scripts print this)."""
    rendered = [row.formatted() for row in rows]
    columns = ["Matrix", "Vertices", "Edges", "Triangles"]
    table = ([columns] if header else []) + rendered
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)) for line in table]
    return "\n".join(lines)
